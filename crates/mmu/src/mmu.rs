//! The MMU facade: TLB lookup, page walk on miss, phase-driven cache
//! prioritization, and the data access itself.

use flatwalk_mem::MemoryHierarchy;
use flatwalk_obs::trace;
use flatwalk_pt::{FrameStore, PageTable, WalkError};
use flatwalk_tlb::{PhaseDetector, PwcConfig, TlbSystem, TlbSystemConfig, TlbSystemStats};
use flatwalk_types::{AccessKind, OwnerId, PhysAddr, VirtAddr};

use crate::{NestedTables, NestedWalker, PageWalker, WalkTiming, WalkerStats};

/// The single span kernel behind [`Mmu::access_batch`] and
/// [`Mmu::translate_batch`]: TLB lookup → phase record → walk on miss →
/// TLB fill, per address, with the backend and the batch-vs-translate
/// variation monomorphized in via `walk` and `emit`. One copy of the
/// loop serves native and nested backends alike (previously four
/// hand-copied arms).
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_span<W, S, F, E>(
    tlb: &mut TlbSystem,
    phase: &mut PhaseDetector,
    ptp: bool,
    walker: &mut W,
    space: S,
    hier: &mut MemoryHierarchy,
    vas: &[VirtAddr],
    owner: OwnerId,
    walk: F,
    mut emit: E,
) -> Result<(), (usize, WalkError)>
where
    S: Copy,
    F: Fn(&mut W, S, VirtAddr, &mut MemoryHierarchy, OwnerId) -> Result<WalkTiming, WalkError>,
    E: FnMut(&mut MemoryHierarchy, PhysAddr, u64, bool),
{
    for (i, &va) in vas.iter().enumerate() {
        let lookup = tlb.lookup(va);
        if ptp {
            hier.set_priority_phase(phase.record(lookup.translation.is_none()));
        }
        match lookup.translation {
            Some((frame, size)) => emit(hier, frame.add(va.offset(size)), lookup.latency, false),
            None => {
                let timing = walk(walker, space, va, hier, owner).map_err(|e| (i, e))?;
                tlb.fill(va, timing.pa.align_down(timing.size), timing.size);
                emit(hier, timing.pa, lookup.latency + timing.latency, true);
            }
        }
    }
    Ok(())
}

/// The address-translation structures an access travels through.
#[derive(Debug, Clone)]
pub enum TranslationBackend {
    /// Native execution: one page table.
    Native(PageWalker),
    /// Virtualized execution: guest + host tables walked in 2-D.
    Nested(NestedWalker),
}

/// The page tables an MMU instance translates against.
#[derive(Debug)]
pub enum AddressSpace<'a> {
    /// A native address space.
    Native {
        /// Page-table contents.
        store: &'a FrameStore,
        /// The table.
        table: &'a PageTable,
    },
    /// A virtualized address space (guest + host tables).
    Nested(NestedTables<'a>),
}

impl<'a> AddressSpace<'a> {
    /// Borrows a native space's structures. The MMU only ever *reads*
    /// through these references, so any holder works — a mutable
    /// under-construction `AddressSpace` or a frozen snapshot shared
    /// behind an `Arc` across worker threads.
    pub fn native(store: &'a FrameStore, table: &'a PageTable) -> Self {
        AddressSpace::Native { store, table }
    }

    /// Wraps a virtualized space's four borrowed tables.
    pub fn nested(tables: NestedTables<'a>) -> Self {
        AddressSpace::Nested(tables)
    }
}

/// Timing of one memory access through the MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Cycles spent translating (TLB arrays + page walk if any).
    pub translation_latency: u64,
    /// Cycles of the data access through the cache hierarchy.
    pub data_latency: u64,
    /// Whether a page walk was needed.
    pub walked: bool,
    /// The translated physical address.
    pub pa: PhysAddr,
}

impl AccessTiming {
    /// Total load-to-use latency of the access.
    pub fn total_latency(&self) -> u64 {
        self.translation_latency + self.data_latency
    }
}

/// MMU-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MmuStats {
    /// TLB statistics.
    pub tlb: TlbSystemStats,
    /// Walker statistics (native or guest-walk totals for nested).
    pub walker: WalkerStats,
}

/// A per-core MMU: TLB complex + page-table walker + the phase detector
/// that gates cache prioritization (paper §5/§6.1).
///
/// `Clone` copies the whole translation state (TLBs, walker caches,
/// phase detector) — the engine's debug-build reference replays run a
/// span on a clone to compare batched against per-op execution.
#[derive(Debug, Clone)]
pub struct Mmu {
    tlb: TlbSystem,
    backend: TranslationBackend,
    phase: PhaseDetector,
    ptp_enabled: bool,
}

impl Mmu {
    /// Builds a native MMU.
    pub fn native(tlb: TlbSystemConfig, pwc: PwcConfig, ptp_enabled: bool) -> Self {
        Mmu {
            tlb: TlbSystem::new(tlb),
            backend: TranslationBackend::Native(PageWalker::new(pwc)),
            phase: PhaseDetector::default_config(),
            ptp_enabled,
        }
    }

    /// Builds a virtualized MMU (guest PSC + vPWC + nested TLB).
    pub fn nested(
        tlb: TlbSystemConfig,
        guest_pwc: PwcConfig,
        host_pwc: PwcConfig,
        nested_entries: usize,
        ptp_enabled: bool,
    ) -> Self {
        Mmu {
            tlb: TlbSystem::new(tlb),
            backend: TranslationBackend::Nested(NestedWalker::new(
                guest_pwc,
                host_pwc,
                nested_entries,
            )),
            phase: PhaseDetector::default_config(),
            ptp_enabled,
        }
    }

    /// Whether page-table prioritization is enabled on this MMU.
    pub fn ptp_enabled(&self) -> bool {
        self.ptp_enabled
    }

    /// Replaces the phase detector (window/threshold tuning).
    pub fn set_phase_detector(&mut self, phase: PhaseDetector) {
        self.phase = phase;
    }

    /// Translates `va`, walking on a TLB miss, and performs the 64 B
    /// data access at the translated address.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkError`] if the address is unmapped.
    pub fn access(
        &mut self,
        aspace: &AddressSpace<'_>,
        hier: &mut MemoryHierarchy,
        va: VirtAddr,
        owner: OwnerId,
    ) -> Result<AccessTiming, WalkError> {
        let (pa, translation_latency, walked) = self.translate(aspace, hier, va, owner)?;
        let data = hier.access(pa, AccessKind::Data, owner);
        Ok(AccessTiming {
            translation_latency,
            data_latency: data.latency,
            walked,
            pa,
        })
    }

    /// Translates `va` without performing the data access.
    ///
    /// Returns `(pa, latency, walked)`.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkError`] if the address is unmapped.
    pub fn translate(
        &mut self,
        aspace: &AddressSpace<'_>,
        hier: &mut MemoryHierarchy,
        va: VirtAddr,
        owner: OwnerId,
    ) -> Result<(PhysAddr, u64, bool), WalkError> {
        let lookup = self.tlb.lookup(va);
        let miss = lookup.translation.is_none();
        if self.ptp_enabled {
            let active = self.phase.record(miss);
            hier.set_priority_phase(active);
        }
        if let Some((frame, size)) = lookup.translation {
            let pa = frame.add(va.offset(size));
            return Ok((pa, lookup.latency, false));
        }

        let timing: WalkTiming = match (&mut self.backend, aspace) {
            (TranslationBackend::Native(w), AddressSpace::Native { store, table }) => {
                w.walk(store, table, va, hier, owner)?
            }
            (TranslationBackend::Nested(w), AddressSpace::Nested(tables)) => {
                w.walk(tables, va, hier, owner)?
            }
            _ => panic!("address-space kind does not match the MMU backend"),
        };
        self.tlb
            .fill(va, timing.pa.align_down(timing.size), timing.size);
        Ok((timing.pa, lookup.latency + timing.latency, true))
    }

    /// Translates and accesses a whole batch of addresses, appending
    /// one [`AccessTiming`] per input to `out` (cleared first).
    ///
    /// Semantically identical to calling [`Mmu::access`] once per
    /// address — same TLB/PSC/walker state transitions, same statistics,
    /// same timings — but the backend dispatch is hoisted out of the
    /// loop, so the per-access path through TLB lookup → walk → data
    /// access is one tight kernel. The batched engines (GUPS and the
    /// other streaming workloads) feed their whole inter-event run
    /// through here.
    ///
    /// # Errors
    ///
    /// On an unmapped address, returns its batch index and the
    /// [`WalkError`]; `out` holds the timings of every access before
    /// it (state mutations up to the failure are identical to the
    /// per-call path).
    ///
    /// # Panics
    ///
    /// Panics if the address-space kind does not match the MMU backend.
    pub fn access_batch(
        &mut self,
        aspace: &AddressSpace<'_>,
        hier: &mut MemoryHierarchy,
        vas: &[VirtAddr],
        owner: OwnerId,
        out: &mut Vec<AccessTiming>,
    ) -> Result<(), (usize, WalkError)> {
        out.clear();
        out.reserve(vas.len());
        let Mmu {
            tlb,
            backend,
            phase,
            ptp_enabled,
        } = self;
        let ptp = *ptp_enabled;
        let tracing = trace::walks_enabled();
        let mut emit = |hier: &mut MemoryHierarchy, pa: PhysAddr, translation_latency, walked| {
            let data = hier.access(pa, AccessKind::Data, owner);
            out.push(AccessTiming {
                translation_latency,
                data_latency: data.latency,
                walked,
                pa,
            });
        };
        match (backend, aspace) {
            (TranslationBackend::Native(w), AddressSpace::Native { store, table }) => run_span(
                tlb,
                phase,
                ptp,
                w,
                (*store, *table),
                hier,
                vas,
                owner,
                |w, (store, table), va, hier, owner| {
                    w.walk_one(store, table, va, hier, owner, tracing)
                },
                &mut emit,
            ),
            (TranslationBackend::Nested(w), AddressSpace::Nested(tables)) => run_span(
                tlb,
                phase,
                ptp,
                w,
                tables,
                hier,
                vas,
                owner,
                |w, tables, va, hier, owner| w.walk_one(tables, va, hier, owner, tracing),
                &mut emit,
            ),
            _ => panic!("address-space kind does not match the MMU backend"),
        }
    }

    /// Batched [`Mmu::translate`]: translates every address without
    /// performing the data accesses, appending `(pa, latency, walked)`
    /// per input to `out` (cleared first). Same state transitions and
    /// statistics as the per-call path; the backend dispatch is hoisted
    /// out of the loop.
    ///
    /// # Errors
    ///
    /// On an unmapped address, returns its batch index and the
    /// [`WalkError`].
    ///
    /// # Panics
    ///
    /// Panics if the address-space kind does not match the MMU backend.
    pub fn translate_batch(
        &mut self,
        aspace: &AddressSpace<'_>,
        hier: &mut MemoryHierarchy,
        vas: &[VirtAddr],
        owner: OwnerId,
        out: &mut Vec<(PhysAddr, u64, bool)>,
    ) -> Result<(), (usize, WalkError)> {
        out.clear();
        out.reserve(vas.len());
        let Mmu {
            tlb,
            backend,
            phase,
            ptp_enabled,
        } = self;
        let ptp = *ptp_enabled;
        let tracing = trace::walks_enabled();
        let mut emit = |_hier: &mut MemoryHierarchy, pa: PhysAddr, latency, walked| {
            out.push((pa, latency, walked));
        };
        match (backend, aspace) {
            (TranslationBackend::Native(w), AddressSpace::Native { store, table }) => run_span(
                tlb,
                phase,
                ptp,
                w,
                (*store, *table),
                hier,
                vas,
                owner,
                |w, (store, table), va, hier, owner| {
                    w.walk_one(store, table, va, hier, owner, tracing)
                },
                &mut emit,
            ),
            (TranslationBackend::Nested(w), AddressSpace::Nested(tables)) => run_span(
                tlb,
                phase,
                ptp,
                w,
                tables,
                hier,
                vas,
                owner,
                |w, tables, va, hier, owner| w.walk_one(tables, va, hier, owner, tracing),
                &mut emit,
            ),
            _ => panic!("address-space kind does not match the MMU backend"),
        }
    }

    /// Statistics snapshot (TLBs + walker).
    pub fn stats(&self) -> MmuStats {
        let walker = match &self.backend {
            TranslationBackend::Native(w) => w.stats(),
            TranslationBackend::Nested(w) => w.stats().walks,
        };
        MmuStats {
            tlb: self.tlb.stats(),
            walker,
        }
    }

    /// The nested walker's extra statistics (virtualized MMUs only).
    pub fn nested_stats(&self) -> Option<crate::NestedWalkerStats> {
        match &self.backend {
            TranslationBackend::Nested(w) => Some(w.stats()),
            TranslationBackend::Native(_) => None,
        }
    }

    /// Phase-detector transitions observed so far (0 when PTP is off —
    /// the detector is never consulted then).
    pub fn phase_flips(&self) -> u64 {
        self.phase.flips()
    }

    /// Per-depth PSC statistics of a native walker.
    pub fn pwc_stats(&self) -> Option<Vec<(u32, flatwalk_types::stats::HitMiss)>> {
        match &self.backend {
            TranslationBackend::Native(w) => Some(w.pwc_stats()),
            TranslationBackend::Nested(_) => None,
        }
    }

    /// Simulates a context switch: flushes the TLB complex and the
    /// walker's translation caches (no PCID/ASID tagging is modelled).
    /// Page-table lines in the ordinary caches survive — which is what
    /// makes both PTP and the in-DRAM TLB of CSALT matter under
    /// frequent switches.
    pub fn context_switch(&mut self) {
        self.tlb.flush();
        match &mut self.backend {
            TranslationBackend::Native(w) => w.flush(),
            TranslationBackend::Nested(w) => w.flush(),
        }
    }

    /// Models a TLB shootdown after a live page-table mutation (unmap,
    /// THP splinter, node demotion): flushes the TLB complex and the
    /// walker's translation caches (PWC/PSC, and nested caches under
    /// virtualization). Returns the number of TLB entries invalidated;
    /// walker-cache entries are flushed but not individually counted.
    pub fn shootdown(&mut self) -> u64 {
        let flushed = self.tlb.shootdown();
        match &mut self.backend {
            TranslationBackend::Native(w) => w.flush(),
            TranslationBackend::Nested(w) => w.flush(),
        }
        flushed
    }

    /// Clears all statistics (contents are kept warm).
    pub fn reset_stats(&mut self) {
        self.phase.reset_flips();
        self.tlb.reset_stats();
        match &mut self.backend {
            TranslationBackend::Native(w) => w.reset_stats(),
            TranslationBackend::Nested(w) => w.reset_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, Layout, Mapper};
    use flatwalk_types::PageSize;

    fn build(layout: Layout, pages: u64) -> (FrameStore, PageTable) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
        for p in 0..pages {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x4000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, *m.table())
    }

    #[test]
    fn tlb_hit_avoids_walk() {
        let (store, table) = build(Layout::conventional4(), 4);
        let aspace = AddressSpace::Native {
            store: &store,
            table: &table,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut mmu = Mmu::native(TlbSystemConfig::server(), PwcConfig::server(), false);

        let va = VirtAddr::new(0x4000_0000);
        let first = mmu.access(&aspace, &mut hier, va, OwnerId::SINGLE).unwrap();
        assert!(first.walked);
        let second = mmu.access(&aspace, &mut hier, va, OwnerId::SINGLE).unwrap();
        assert!(!second.walked);
        assert_eq!(second.translation_latency, 1, "L1 TLB hit");
        assert_eq!(second.pa, first.pa);
        assert_eq!(mmu.stats().walker.walks, 1);
        assert_eq!(mmu.stats().tlb.walks, 1);
    }

    #[test]
    fn phase_detector_raises_priority_flag_under_miss_storm() {
        let (store, table) = build(Layout::conventional4(), 4096);
        let aspace = AddressSpace::Native {
            store: &store,
            table: &table,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut mmu = Mmu::native(TlbSystemConfig::server(), PwcConfig::server(), true);
        mmu.set_phase_detector(PhaseDetector::new(64, 0.02));

        // Touch thousands of distinct pages: every access misses the TLB.
        for p in 0..4096u64 {
            mmu.access(
                &aspace,
                &mut hier,
                VirtAddr::new(0x4000_0000 + p * 4096),
                OwnerId::SINGLE,
            )
            .unwrap();
        }
        assert!(hier.priority_phase(), "miss storm must raise the PTP flag");
    }

    #[test]
    fn ptp_disabled_never_touches_the_flag() {
        let (store, table) = build(Layout::conventional4(), 512);
        let aspace = AddressSpace::Native {
            store: &store,
            table: &table,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut mmu = Mmu::native(TlbSystemConfig::server(), PwcConfig::server(), false);
        for p in 0..512u64 {
            mmu.access(
                &aspace,
                &mut hier,
                VirtAddr::new(0x4000_0000 + p * 4096),
                OwnerId::SINGLE,
            )
            .unwrap();
        }
        assert!(!hier.priority_phase());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_backend_panics() {
        let (store, table) = build(Layout::conventional4(), 1);
        let aspace = AddressSpace::Native {
            store: &store,
            table: &table,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut mmu = Mmu::nested(
            TlbSystemConfig::server(),
            PwcConfig::server(),
            PwcConfig::server(),
            16,
            false,
        );
        let _ = mmu.access(
            &aspace,
            &mut hier,
            VirtAddr::new(0x4000_0000),
            OwnerId::SINGLE,
        );
    }
}
