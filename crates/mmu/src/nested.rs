//! The timed two-dimensional (virtualized) page walker (paper §4).
//!
//! A guest translation walks the guest page table (gVA→gPA), but every
//! guest-table access itself needs a host translation (gPA→hPA), and the
//! final guest-physical data address needs one more. Naively that is
//! (4+1)×4 + 4 = 24 memory accesses; the nested TLB caches gPA→hPA page
//! translations, the guest PSC skips guest levels, and the vPWC skips
//! host levels (Fig. 8).

use flatwalk_mem::MemoryHierarchy;
use flatwalk_obs::trace::{self, WalkRecord, WalkStepRecord};
use flatwalk_pt::{resolve, resolve_from_with, FrameStore, NodeShape, PageTable, WalkError};
use flatwalk_tlb::{NestedTlb, Pwc, PwcConfig};
use flatwalk_types::{AccessKind, Level, OwnerId, PageSize, PhysAddr, VirtAddr};

use crate::walker::level_label;
use crate::{WalkTiming, WalkerStats};

/// The two page tables of a virtualized address space.
///
/// The guest table translates gVA→gPA and its contents live in the guest
/// frame store (addressed by gPA); the host table translates gPA→hPA and
/// lives in the host store (addressed by hPA, i.e. system physical
/// memory, which is what the cache hierarchy is indexed by).
#[derive(Debug)]
pub struct NestedTables<'a> {
    /// Guest page-table contents, addressed by guest-physical address.
    pub guest_store: &'a FrameStore,
    /// The guest table (gVA→gPA).
    pub guest_table: &'a PageTable,
    /// Host page-table contents, addressed by host-physical address.
    pub host_store: &'a FrameStore,
    /// The host table (gPA→hPA).
    pub host_table: &'a PageTable,
}

/// Statistics of the nested walker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NestedWalkerStats {
    /// Walk-level statistics (accesses include guest and host entry
    /// reads).
    pub walks: WalkerStats,
    /// Host translations requested (guest-entry accesses + final data).
    pub nested_translations: u64,
    /// Host translations that missed the nested TLB and walked the host
    /// table.
    pub host_walks: u64,
}

/// The 2-D walker: guest PSC + vPWC + nested TLB.
#[derive(Debug, Clone)]
pub struct NestedWalker {
    guest_pwc: Pwc,
    host_pwc: Pwc,
    nested_tlb: NestedTlb,
    stats: NestedWalkerStats,
}

impl NestedWalker {
    /// Creates a nested walker.
    ///
    /// `guest_pwc` caches guest-walk prefixes (keyed by gVA), `host_pwc`
    /// is the vPWC (keyed by gPA), and the nested TLB holds gPA→hPA page
    /// translations (Table 1: 16-entry fully associative, 1 cycle).
    pub fn new(guest_pwc: PwcConfig, host_pwc: PwcConfig, nested_entries: usize) -> Self {
        NestedWalker {
            guest_pwc: Pwc::new(guest_pwc),
            host_pwc: Pwc::new(host_pwc),
            nested_tlb: NestedTlb::new(nested_entries, 1),
            stats: NestedWalkerStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NestedWalkerStats {
        self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = NestedWalkerStats::default();
        self.guest_pwc.reset_stats();
        self.host_pwc.reset_stats();
        self.nested_tlb.reset_stats();
    }

    /// Empties the PSCs and the nested TLB (world switch).
    pub fn flush(&mut self) {
        self.guest_pwc.flush();
        self.host_pwc.flush();
        self.nested_tlb.flush();
    }

    /// Performs a full 2-D walk of `gva`.
    ///
    /// Returns the *host-physical* translation; `size` is the effective
    /// TLB-insertable granularity (the smaller of the guest and host
    /// mapping sizes, since the combined translation is only linear
    /// within both).
    ///
    /// # Errors
    ///
    /// Propagates guest or host [`WalkError`]s.
    pub fn walk(
        &mut self,
        tables: &NestedTables<'_>,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<WalkTiming, WalkError> {
        self.walk_one(tables, gva, hier, owner, trace::walks_enabled())
    }

    /// One 2-D walk with the trace decision already made — the batched
    /// nested-walk kernel entry: the `Mmu` span kernels hoist the trace
    /// gate once per span and drive every nested-backend TLB miss
    /// through here, so batching applies to virtualized configurations
    /// exactly as it does to native ones.
    ///
    /// The non-tracing fast path is *fused*: each guest step the
    /// monomorphized functional walker decodes is host-translated,
    /// issued to the hierarchy, and used to train the guest PSC
    /// inline — and both the guest PSC and the vPWC short-circuit the
    /// functional walk itself (the suffix below a hit node is walked
    /// directly). Tables are immutable during a run, so a trained
    /// prefix can never disagree with the table; timing, statistics,
    /// and training match the resolve-then-replay path exactly.
    pub(crate) fn walk_one(
        &mut self,
        tables: &NestedTables<'_>,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
        tracing: bool,
    ) -> Result<WalkTiming, WalkError> {
        if tracing {
            return self.walk_traced(tables, gva, hier, owner);
        }
        let NestedWalker {
            guest_pwc,
            host_pwc,
            nested_tlb,
            stats,
        } = self;

        let gt = tables.guest_table;
        let mut latency = guest_pwc.latency();
        let (node_base, node_shape, pos_top, base_bits) = match guest_pwc.lookup(gva) {
            Some(hit) => {
                // Same short-circuit as the native walker: the hit
                // prefix lands on a step boundary of this walk, so the
                // decode position below it is top minus the consumed
                // groups; a rank underflow means a PSC/table mismatch
                // and falls back to the full walk.
                let rank = gt
                    .top_level
                    .rank()
                    .wrapping_sub((hit.prefix_bits / 9) as u8);
                match Level::from_rank(rank) {
                    Some(pos) => (hit.node_base, hit.node_shape, pos, hit.prefix_bits),
                    None => (gt.root, gt.root_shape, gt.top_level, 0),
                }
            }
            None => (gt.root, gt.root_shape, gt.top_level, 0),
        };

        let mut accesses = 0u64;
        let mut cum = 0u32;
        let mut guest_steps = 0u64;
        let (gpa, guest_size) = resolve_from_with(
            tables.guest_store,
            node_base,
            node_shape,
            pos_top,
            gva,
            &mut |step| {
                if guest_steps > 0 {
                    guest_pwc.insert(
                        gva,
                        base_bits + cum,
                        step.node_base,
                        NodeShape::from_depth(step.depth).expect("valid step depth"),
                    );
                }
                guest_steps += 1;
                cum += step.index_bits();
                // The guest entry lives at a guest-physical address: it
                // needs a host translation before the cache access.
                let entry_gpa = PhysAddr::new(step.entry_pa.raw());
                let (entry_hpa, lat, acc, _) = host_translate_fused(
                    host_pwc, nested_tlb, stats, tables, entry_gpa, hier, owner,
                )?;
                latency += lat;
                accesses += acc;
                let out = hier.access(entry_hpa, AccessKind::PageTable, owner);
                latency += out.latency;
                accesses += 1;
                stats.walks.step_hits.record(out.level);
                Ok(())
            },
        )?;

        #[cfg(debug_assertions)]
        if base_bits > 0 {
            let full = resolve(tables.guest_store, gt, gva).expect("prefix was present");
            debug_assert_eq!(
                (full.pa, full.size),
                (gpa, guest_size),
                "guest PSC short-circuit must agree with the full walk"
            );
        }

        // Final host translation of the data's guest-physical address.
        let data_gpa = PhysAddr::new(gpa.raw());
        let (data_hpa, lat, acc, host_size) =
            host_translate_fused(host_pwc, nested_tlb, stats, tables, data_gpa, hier, owner)?;
        latency += lat;
        accesses += acc;

        // Effective granularity: both mappings must be linear across the
        // page for the TLB entry to be valid.
        let size = guest_size.min(host_size);

        let timing = WalkTiming {
            pa: data_hpa,
            size,
            accesses,
            latency,
        };
        stats.walks.record(&timing);
        Ok(timing)
    }

    /// The resolve-then-replay walk, kept for tracing: reporting how
    /// many steps the PSC skipped requires the full functional walk.
    fn walk_traced(
        &mut self,
        tables: &NestedTables<'_>,
        gva: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<WalkTiming, WalkError> {
        let guest_walk = resolve(tables.guest_store, tables.guest_table, gva)?;
        let cum = guest_walk.steps.cum_index_bits();

        let mut latency = self.guest_pwc.latency();
        let mut accesses = 0u64;
        let mut first_step = 0usize;
        if let Some(hit) = self.guest_pwc.lookup(gva) {
            if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                if i + 1 < guest_walk.steps.len() {
                    first_step = i + 1;
                }
            }
        }

        let tracing = trace::walks_enabled();
        let mut trace_steps: Vec<WalkStepRecord> = Vec::new();

        // Guest levels: translate each entry's gPA, then read the entry.
        for step in &guest_walk.steps[first_step..] {
            let entry_gpa = PhysAddr::new(step.entry_pa.raw());
            let (entry_hpa, lat, acc, _) =
                self.host_translate(tables, entry_gpa, hier, owner, tracing, &mut trace_steps)?;
            latency += lat;
            accesses += acc;
            let out = hier.access(entry_hpa, AccessKind::PageTable, owner);
            latency += out.latency;
            accesses += 1;
            self.stats.walks.step_hits.record(out.level);
            if tracing {
                trace_steps.push(WalkStepRecord {
                    depth: step.depth,
                    level: level_label(out.level),
                });
            }
        }

        // Train the guest PSC.
        for i in first_step..guest_walk.steps.len().saturating_sub(1) {
            let next = &guest_walk.steps[i + 1];
            self.guest_pwc.insert(
                gva,
                cum[i],
                next.node_base,
                NodeShape::from_depth(next.depth).expect("valid step depth"),
            );
        }

        // Final host translation of the data's guest-physical address.
        let data_gpa = PhysAddr::new(guest_walk.pa.raw());
        let (data_hpa, lat, acc, host_size) =
            self.host_translate(tables, data_gpa, hier, owner, tracing, &mut trace_steps)?;
        latency += lat;
        accesses += acc;

        // Effective granularity: both mappings must be linear across the
        // page for the TLB entry to be valid.
        let size = guest_walk.size.min(host_size);

        let timing = WalkTiming {
            pa: data_hpa,
            size,
            accesses,
            latency,
        };
        self.stats.walks.record(&timing);
        if tracing {
            trace::emit_walk(&WalkRecord {
                va: gva.raw(),
                accesses,
                latency,
                psc_skipped: first_step as u8,
                flattened: trace_steps.iter().any(|s| s.depth > 1),
                steps: &trace_steps,
            });
        }
        Ok(timing)
    }

    /// Translates a guest-physical address via nested TLB, falling back
    /// to a host walk accelerated by the vPWC.
    fn host_translate(
        &mut self,
        tables: &NestedTables<'_>,
        gpa: PhysAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
        tracing: bool,
        trace_steps: &mut Vec<WalkStepRecord>,
    ) -> Result<(PhysAddr, u64, u64, PageSize), WalkError> {
        self.stats.nested_translations += 1;
        let mut latency = self.nested_tlb.latency();
        if let Some((hpa, size)) = self.nested_tlb.lookup(gpa) {
            return Ok((hpa, latency, 0, size));
        }
        self.stats.host_walks += 1;

        let host_va = gpa.as_nested_input();
        let walk = resolve(tables.host_store, tables.host_table, host_va)?;
        let cum = walk.steps.cum_index_bits();
        latency += self.host_pwc.latency();
        let mut first_step = 0usize;
        if let Some(hit) = self.host_pwc.lookup(host_va) {
            if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                if i + 1 < walk.steps.len() {
                    first_step = i + 1;
                }
            }
        }
        let mut accesses = 0u64;
        for step in &walk.steps[first_step..] {
            let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
            latency += out.latency;
            accesses += 1;
            self.stats.walks.step_hits.record(out.level);
            if tracing {
                trace_steps.push(WalkStepRecord {
                    depth: step.depth,
                    level: level_label(out.level),
                });
            }
        }
        for i in first_step..walk.steps.len().saturating_sub(1) {
            let next = &walk.steps[i + 1];
            self.host_pwc.insert(
                host_va,
                cum[i],
                next.node_base,
                NodeShape::from_depth(next.depth).expect("valid step depth"),
            );
        }
        self.nested_tlb.insert(gpa, walk.frame_base(), walk.size);
        Ok((walk.pa, latency, accesses, walk.size))
    }
}

/// Fused counterpart of [`NestedWalker::host_translate`]: the host walk
/// issues entry reads and trains the vPWC inline, and a vPWC hit
/// short-circuits the functional host walk too.
///
/// A free function over the walker's split-out fields so the guest-walk
/// visitor (which holds the guest PSC mutably) can call it per step.
#[allow(clippy::too_many_arguments)]
fn host_translate_fused(
    host_pwc: &mut Pwc,
    nested_tlb: &mut NestedTlb,
    stats: &mut NestedWalkerStats,
    tables: &NestedTables<'_>,
    gpa: PhysAddr,
    hier: &mut MemoryHierarchy,
    owner: OwnerId,
) -> Result<(PhysAddr, u64, u64, PageSize), WalkError> {
    stats.nested_translations += 1;
    let mut latency = nested_tlb.latency();
    if let Some((hpa, size)) = nested_tlb.lookup(gpa) {
        return Ok((hpa, latency, 0, size));
    }
    stats.host_walks += 1;

    let ht = tables.host_table;
    let host_va = gpa.as_nested_input();
    latency += host_pwc.latency();
    let (node_base, node_shape, pos_top, base_bits) = match host_pwc.lookup(host_va) {
        Some(hit) => {
            let rank = ht
                .top_level
                .rank()
                .wrapping_sub((hit.prefix_bits / 9) as u8);
            match Level::from_rank(rank) {
                Some(pos) => (hit.node_base, hit.node_shape, pos, hit.prefix_bits),
                None => (ht.root, ht.root_shape, ht.top_level, 0),
            }
        }
        None => (ht.root, ht.root_shape, ht.top_level, 0),
    };

    let mut accesses = 0u64;
    let mut cum = 0u32;
    let (pa, size) = resolve_from_with(
        tables.host_store,
        node_base,
        node_shape,
        pos_top,
        host_va,
        &mut |step| {
            if accesses > 0 {
                host_pwc.insert(
                    host_va,
                    base_bits + cum,
                    step.node_base,
                    NodeShape::from_depth(step.depth).expect("valid step depth"),
                );
            }
            cum += step.index_bits();
            let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
            latency += out.latency;
            accesses += 1;
            stats.walks.step_hits.record(out.level);
            Ok(())
        },
    )?;

    #[cfg(debug_assertions)]
    if base_bits > 0 {
        let full = resolve(tables.host_store, ht, host_va).expect("prefix was present");
        debug_assert_eq!(
            (full.pa, full.size),
            (pa, size),
            "vPWC short-circuit must agree with the full host walk"
        );
    }

    nested_tlb.insert(gpa, pa.align_down(size), size);
    Ok((pa, latency, accesses, size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, Layout, Mapper};

    /// Builds a virtualized setup: the guest maps gVA→gPA, the host maps
    /// every guest-physical page (data *and* guest page-table frames).
    fn build(
        guest_layout: Layout,
        host_layout: Layout,
        pages: u64,
    ) -> (FrameStore, PageTable, FrameStore, PageTable) {
        let mut gstore = FrameStore::new();
        let mut galloc = BumpAllocator::new(0x1000_0000);
        let mut gmap =
            Mapper::new(&mut gstore, &mut galloc, guest_layout, &FlattenEverywhere).unwrap();
        for p in 0..pages {
            gmap.map(
                &mut gstore,
                &mut galloc,
                &FlattenEverywhere,
                VirtAddr::new(0x4000_0000 + p * 4096),
                PhysAddr::new(0x2000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }

        let mut hstore = FrameStore::new();
        let mut halloc = BumpAllocator::new(0x40_0000_0000);
        let mut hmap =
            Mapper::new(&mut hstore, &mut halloc, host_layout, &FlattenEverywhere).unwrap();
        // Identity-plus-offset host mapping covering all guest-physical
        // space the guest uses (PT frames near 256 MB, data near 512 MB),
        // 4 KB granularity.
        for gfn in 0..0x2_1000u64 {
            hmap.map(
                &mut hstore,
                &mut halloc,
                &FlattenEverywhere,
                VirtAddr::new(gfn * 4096),
                PhysAddr::new(0x10_0000_0000 + gfn * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (gstore, *gmap.table(), hstore, *hmap.table())
    }

    #[test]
    fn cold_2d_walk_costs_many_accesses_and_warms_down() {
        let (gstore, gtable, hstore, htable) =
            build(Layout::conventional4(), Layout::conventional4(), 64);
        let tables = NestedTables {
            guest_store: &gstore,
            guest_table: &gtable,
            host_store: &hstore,
            host_table: &htable,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = NestedWalker::new(PwcConfig::server(), PwcConfig::server(), 16);

        let cold = w
            .walk(
                &tables,
                VirtAddr::new(0x4000_0000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert!(
            cold.accesses > 10,
            "cold 2-D walk should approach the naive 24 accesses (got {})",
            cold.accesses
        );
        assert_eq!(cold.pa.raw(), 0x10_0000_0000 + 0x2000_0000);

        let warm = w
            .walk(
                &tables,
                VirtAddr::new(0x4000_1000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert!(
            warm.accesses <= 3,
            "PWCs + nested TLB should cut the warm walk to a few accesses (got {})",
            warm.accesses
        );
    }

    #[test]
    fn flattening_guest_and_host_reduces_accesses() {
        let (gstore, gtable, hstore, htable) =
            build(Layout::flat_l4l3_l2l1(), Layout::flat_l4l3_l2l1(), 64);
        let tables = NestedTables {
            guest_store: &gstore,
            guest_table: &gtable,
            host_store: &hstore,
            host_table: &htable,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = NestedWalker::new(PwcConfig::server(), PwcConfig::server(), 16);

        let cold = w
            .walk(
                &tables,
                VirtAddr::new(0x4000_0000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert!(
            cold.accesses <= 8,
            "flattening both tables bounds the naive walk at 8 (got {})",
            cold.accesses
        );
        // Warm: guest PSC hit (1 guest access) + final host translation.
        let warm = w
            .walk(
                &tables,
                VirtAddr::new(0x4000_1000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert!(
            warm.accesses <= 3,
            "flattened warm 2-D walk should be ~2-3 accesses (got {})",
            warm.accesses
        );
    }

    #[test]
    fn effective_size_is_min_of_guest_and_host() {
        // Guest maps a 2 MB page; host backs it with 4 KB pages → the
        // combined translation is only linear at 4 KB granularity.
        let mut gstore = FrameStore::new();
        let mut galloc = BumpAllocator::new(0x1000_0000);
        let mut gmap = Mapper::new(
            &mut gstore,
            &mut galloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        gmap.map(
            &mut gstore,
            &mut galloc,
            &FlattenEverywhere,
            VirtAddr::new(0x4000_0000),
            PhysAddr::new(0x20_0000),
            PageSize::Size2M,
        )
        .unwrap();

        let mut hstore = FrameStore::new();
        let mut halloc = BumpAllocator::new(0x40_0000_0000);
        let mut hmap = Mapper::new(
            &mut hstore,
            &mut halloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        for gfn in 0..0x1_1000u64 {
            hmap.map(
                &mut hstore,
                &mut halloc,
                &FlattenEverywhere,
                VirtAddr::new(gfn * 4096),
                PhysAddr::new(0x10_0000_0000 + gfn * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        let tables = NestedTables {
            guest_store: &gstore,
            guest_table: gmap.table(),
            host_store: &hstore,
            host_table: hmap.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = NestedWalker::new(PwcConfig::server(), PwcConfig::server(), 16);
        let t = w
            .walk(
                &tables,
                VirtAddr::new(0x4000_0000),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert_eq!(t.size, PageSize::Size4K);
        assert_eq!(t.pa.raw(), 0x10_0000_0000 + 0x20_0000);
    }

    #[test]
    fn nested_stats_track_host_walks() {
        let (gstore, gtable, hstore, htable) =
            build(Layout::conventional4(), Layout::conventional4(), 4);
        let tables = NestedTables {
            guest_store: &gstore,
            guest_table: &gtable,
            host_store: &hstore,
            host_table: &htable,
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut w = NestedWalker::new(PwcConfig::server(), PwcConfig::server(), 16);
        w.walk(
            &tables,
            VirtAddr::new(0x4000_0000),
            &mut hier,
            OwnerId::SINGLE,
        )
        .unwrap();
        let s = w.stats();
        assert_eq!(s.walks.walks, 1);
        assert_eq!(s.nested_translations, 5, "4 guest entries + final data");
        assert!(s.host_walks >= 1);
    }
}
