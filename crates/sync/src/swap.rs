//! Sharded read-mostly maps with lock-free lookups.
//!
//! A [`SwapMap`] keys a small number of shards by hash; each shard
//! publishes an immutable `HashMap` snapshot through an atomic pointer.
//! Readers load the current snapshot and probe it — no `Mutex` on the
//! read path, ever. Writers serialize on a per-shard mutex, clone the
//! snapshot, apply their change, and swap the new generation in
//! (epoch-style clone-on-insert).
//!
//! Reclamation: a displaced generation cannot be freed while a reader
//! might still hold its pointer. Each shard counts in-flight readers;
//! a writer retires the old generation and frees the retired list only
//! when it observes zero readers (and `Drop` frees whatever is left).
//! Readers and the quiescence check use `SeqCst` so a reader counted as
//! *absent* is guaranteed to observe the *new* snapshot pointer — the
//! classic store-buffering pitfall this pattern must rule out.
//!
//! This trades write cost (clone per mutation) for a read path that is
//! two atomic RMWs and a hash probe. The setup cache and the serve
//! result cache are exactly that shape: hot repeated lookups, rare
//! inserts.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

struct Shard<K, V> {
    /// The published snapshot; never null.
    current: AtomicPtr<HashMap<K, V>>,
    /// In-flight lock-free readers of this shard.
    readers: AtomicUsize,
    /// Writer serialization + retired generations awaiting quiescence.
    writer: Mutex<Vec<*mut HashMap<K, V>>>,
}

/// A sharded map with lock-free reads and clone-and-swap writes.
///
/// # Examples
///
/// ```
/// use flatwalk_sync::SwapMap;
///
/// let m: SwapMap<String, u64> = SwapMap::new();
/// let (v, created) = m.get_or_insert_with("a".to_string(), || 7);
/// assert_eq!((v, created), (7, true));
/// let (v, created) = m.get_or_insert_with("a".to_string(), || 8);
/// assert_eq!((v, created), (7, false), "coalesces onto the first insert");
/// assert_eq!(m.get(&"a".to_string()), Some(7));
/// ```
pub struct SwapMap<K, V> {
    shards: Box<[Shard<K, V>]>,
    shard_mask: usize,
    hasher: RandomState,
}

// SAFETY: the raw pointers all point to heap `HashMap`s owned by the
// structure; access is mediated by the atomic snapshot protocol above.
// Sharing requires the usual bounds on the contents.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SwapMap<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SwapMap<K, V> {}

const DEFAULT_SHARDS: usize = 8;

impl<K, V> SwapMap<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// Creates an empty map with the default shard count (8).
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty map with `shards` shards (rounded up to a
    /// power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<Shard<K, V>> = (0..n)
            .map(|_| Shard {
                current: AtomicPtr::new(Box::into_raw(Box::new(HashMap::new()))),
                readers: AtomicUsize::new(0),
                writer: Mutex::new(Vec::new()),
            })
            .collect();
        SwapMap {
            shards: shards.into_boxed_slice(),
            shard_mask: n - 1,
            hasher: RandomState::new(),
        }
    }

    #[inline]
    fn shard_of(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & self.shard_mask]
    }

    /// Looks up `key` without acquiring any lock.
    ///
    /// The reader count is raised around the snapshot dereference so a
    /// concurrent writer cannot free the generation under us; `SeqCst`
    /// on the increment pairs with the writer's quiescence check.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard_of(key);
        shard.readers.fetch_add(1, Ordering::SeqCst);
        let snap = shard.current.load(Ordering::SeqCst);
        // SAFETY: `snap` was the published generation after our reader
        // registration; writers only free generations they retired
        // *and* observed `readers == 0` for afterwards, so this one
        // stays alive until our decrement below.
        let out = unsafe { &*snap }.get(key).cloned();
        shard.readers.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Returns the value for `key`, inserting `make()` if absent; the
    /// boolean is `true` when this call created the entry.
    ///
    /// `make` runs under the shard's writer lock, so concurrent misses
    /// on the same key coalesce onto one insert. (The flatwalk setup
    /// cache stores once-cells and builds *outside* this lock; cheap
    /// values can be built inline.)
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.get(&key) {
            return (v, false);
        }
        let shard = self.shard_of(&key);
        let mut retired = shard.writer.lock().unwrap_or_else(|e| e.into_inner()); // lock-ok: write path
                                                                                  // The snapshot is stable under the writer lock: only lock
                                                                                  // holders swap it.
        let snap = shard.current.load(Ordering::SeqCst);
        // SAFETY: writer lock held — the current generation cannot be
        // retired (let alone freed) while we hold it.
        let mut next = unsafe { &*snap }.clone();
        // Entry API: a *single* probe of the next generation decides
        // between "a concurrent writer beat us" and "insert".
        match next.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let value = make();
                e.insert(value.clone());
                Self::publish(shard, &mut retired, snap, next);
                (value, true)
            }
        }
    }

    /// Inserts or replaces `key`, returning whether it was new.
    pub fn insert(&self, key: K, value: V) -> bool {
        let shard = self.shard_of(&key);
        let mut retired = shard.writer.lock().unwrap_or_else(|e| e.into_inner()); // lock-ok: write path
        let snap = shard.current.load(Ordering::SeqCst);
        // SAFETY: writer lock held (see `get_or_insert_with`).
        let mut next = unsafe { &*snap }.clone();
        let created = next.insert(key, value).is_none();
        Self::publish(shard, &mut retired, snap, next);
        created
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&self, key: &K) -> bool {
        let shard = self.shard_of(key);
        let mut retired = shard.writer.lock().unwrap_or_else(|e| e.into_inner()); // lock-ok: write path
        let snap = shard.current.load(Ordering::SeqCst);
        // SAFETY: writer lock held (see `get_or_insert_with`).
        if !unsafe { &*snap }.contains_key(key) {
            return false;
        }
        let mut next = unsafe { &*snap }.clone();
        next.remove(key);
        Self::publish(shard, &mut retired, snap, next);
        true
    }

    /// Rewrites a whole shard-set atomically per shard: `f` sees each
    /// shard's snapshot and returns `Some(replacement)` to publish or
    /// `None` to leave the shard untouched. Used for bulk eviction.
    pub fn retain_rebuild(&self, mut f: impl FnMut(&HashMap<K, V>) -> Option<HashMap<K, V>>) {
        for shard in self.shards.iter() {
            let mut retired = shard.writer.lock().unwrap_or_else(|e| e.into_inner()); // lock-ok: write path
            let snap = shard.current.load(Ordering::SeqCst);
            // SAFETY: writer lock held (see `get_or_insert_with`).
            if let Some(next) = f(unsafe { &*snap }) {
                Self::publish(shard, &mut retired, snap, next);
            }
        }
    }

    /// Clears all entries.
    pub fn clear(&self) {
        self.retain_rebuild(|snap| {
            if snap.is_empty() {
                None
            } else {
                Some(HashMap::new())
            }
        });
    }

    /// Total entries across shards (a consistent per-shard snapshot;
    /// shards are read one after another).
    pub fn len(&self) -> usize {
        self.fold(0, |acc, snap| acc + snap.len())
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds over every shard's current snapshot, lock-free.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &HashMap<K, V>) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            shard.readers.fetch_add(1, Ordering::SeqCst);
            let snap = shard.current.load(Ordering::SeqCst);
            // SAFETY: reader registration above keeps the generation
            // alive (see `get`).
            acc = f(acc, unsafe { &*snap });
            shard.readers.fetch_sub(1, Ordering::SeqCst);
        }
        acc
    }

    /// Publishes `next` as `shard`'s generation, retiring `old` and
    /// freeing the retired list if no reader can still hold it.
    fn publish(
        shard: &Shard<K, V>,
        retired: &mut Vec<*mut HashMap<K, V>>,
        old: *mut HashMap<K, V>,
        next: HashMap<K, V>,
    ) {
        shard
            .current
            .store(Box::into_raw(Box::new(next)), Ordering::SeqCst);
        retired.push(old);
        // Quiescence check: SeqCst orders this load after the store
        // above, pairing with readers' SeqCst increment — any reader
        // not counted here is guaranteed to load the new snapshot.
        if shard.readers.load(Ordering::SeqCst) == 0 {
            for ptr in retired.drain(..) {
                // SAFETY: every retired generation was unpublished
                // before entering the list, and zero readers are in
                // flight, so no pointer to it survives.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl<K, V> Default for SwapMap<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for SwapMap<K, V> {
    fn drop(&mut self) {
        for shard in self.shards.iter_mut() {
            // SAFETY: `&mut self` — no readers or writers remain; the
            // current generation and any retired ones are exclusively
            // ours to free.
            unsafe {
                drop(Box::from_raw(shard.current.load(Ordering::SeqCst)));
                let retired = shard.writer.get_mut().unwrap_or_else(|e| e.into_inner());
                for ptr in retired.drain(..) {
                    drop(Box::from_raw(ptr));
                }
            }
        }
    }
}

impl<K, V> std::fmt::Debug for SwapMap<K, V>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapMap")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove_roundtrip() {
        let m: SwapMap<u64, String> = SwapMap::new();
        assert!(m.is_empty());
        assert!(m.insert(1, "one".into()));
        assert!(!m.insert(1, "uno".into()), "replacement is not creation");
        assert_eq!(m.get(&1).as_deref(), Some("uno"));
        assert_eq!(m.len(), 1);
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn get_or_insert_coalesces() {
        let m: SwapMap<&'static str, u64> = SwapMap::new();
        assert_eq!(m.get_or_insert_with("k", || 1), (1, true));
        assert_eq!(m.get_or_insert_with("k", || 2), (1, false));
    }

    #[test]
    fn clear_empties_all_shards() {
        let m: SwapMap<u64, u64> = SwapMap::with_shards(4);
        for i in 0..64 {
            m.insert(i, i * i);
        }
        assert_eq!(m.len(), 64);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&7), None);
    }

    /// Stress loop: concurrent readers spin on lock-free `get` while a
    /// writer churns generations; readers must always observe either
    /// absence or a fully intact value (generation memory must never be
    /// freed out from under them).
    #[test]
    fn readers_survive_concurrent_generation_churn() {
        let m: Arc<SwapMap<u64, Vec<u64>>> = Arc::new(SwapMap::with_shards(2));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..16u64 {
                            if let Some(v) = m.get(&k) {
                                // Payload is self-describing: a tear or
                                // use-after-free shows up here.
                                assert_eq!(v, vec![k, k + 1, k + 2]);
                                hits += 1;
                            }
                        }
                    }
                    hits
                })
            })
            .collect();
        for round in 0..300u64 {
            let k = round % 16;
            m.insert(k, vec![k, k + 1, k + 2]);
            if round % 5 == 4 {
                m.remove(&k);
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    /// Stress loop: concurrent `get_or_insert_with` on the same keys —
    /// exactly one creation per key, everyone agrees on the value.
    #[test]
    fn concurrent_get_or_insert_creates_once() {
        for _ in 0..50 {
            let m: Arc<SwapMap<u64, u64>> = Arc::new(SwapMap::new());
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        let mut created = 0u64;
                        for k in 0..8u64 {
                            let (v, fresh) = m.get_or_insert_with(k, || k * 100 + t);
                            assert_eq!(v / 100, k, "value is some thread's k*100+t");
                            assert!(v % 100 < 4);
                            if fresh {
                                created += 1;
                            }
                        }
                        created
                    })
                })
                .collect();
            let total_created: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total_created, 8, "each key created exactly once");
            assert_eq!(m.len(), 8);
        }
    }
}
