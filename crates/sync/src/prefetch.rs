//! Read-prefetch hints for slab scans.
//!
//! The cache models walk contiguous tag slabs whose working set (a
//! simulated LLC's tag array is megabytes) far exceeds the host's own
//! caches, so a random probe stalls on host DRAM right at the hottest
//! loop. Issuing the fetch early — while the levels above are still
//! probing — overlaps that stall. A prefetch is purely a performance
//! hint: it never changes observable state, so callers stay
//! byte-identical with and without it.

/// Hints the CPU to pull the cache line holding `slice[index]` toward
/// L1. Out-of-range indices and non-x86 targets are a no-op; the hint
/// never reads the memory, so it is safe on any slice.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    if index >= slice.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `index` is in bounds, so the pointer is derived from and
    // stays within the slice allocation; `_mm_prefetch` performs no
    // memory access (it is a hint) and has no side effects.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(slice.as_ptr().add(index) as *const i8, _MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    {
        // No stable prefetch intrinsic on aarch64; reading would change
        // semantics under Miri-style tooling, so do nothing.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_and_out_of_range_are_noops_semantically() {
        let v: Vec<u64> = (0..128).collect();
        prefetch_read(&v, 0);
        prefetch_read(&v, 127);
        prefetch_read(&v, 128); // out of range: ignored
        prefetch_read::<u64>(&[], 0);
        assert_eq!(v[127], 127, "contents untouched");
    }
}
