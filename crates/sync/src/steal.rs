//! Work-stealing index queues.
//!
//! The scheduler's job space is known up front: `total` cell indices,
//! split into one contiguous range per worker. Each range is a bounded
//! deque packed into a single `AtomicU64` as `head:32 | tail:32`, and
//! the queue owns the half-open index interval `[head, tail)`:
//!
//! * the owner pops from the **front** (`head += 1`), preserving the
//!   serial visit order within its partition, and
//! * thieves pop from the **back** (`tail -= 1`), so owner and thief
//!   contend on opposite ends and a steal grabs the work the owner
//!   would reach last.
//!
//! Both transitions are single compare-and-swap operations on the
//! packed word. Indices only ever move inward and ranges are never
//! refilled, so there is no ABA hazard and no reclamation to manage.
//! Determinism is untouched by construction: stealing only changes
//! *which worker* runs an index, never the index→result mapping, and
//! the scheduler splices results back in index order.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker bounded index deques with a steal path.
///
/// # Examples
///
/// ```
/// use flatwalk_sync::StealQueues;
///
/// let q = StealQueues::new(5, 2);
/// // Worker 0 owns [0, 3), worker 1 owns [3, 5).
/// assert_eq!(q.next(0), Some(0));
/// assert_eq!(q.next(1), Some(3));
/// // Worker 1 drains its range, then steals from the back of 0's.
/// assert_eq!(q.next(1), Some(4));
/// assert_eq!(q.next(1), Some(2));
/// assert_eq!(q.next(0), Some(1));
/// assert_eq!(q.next(0), None);
/// ```
#[derive(Debug)]
pub struct StealQueues {
    /// One `head:32 | tail:32` word per worker.
    queues: Box<[AtomicU64]>,
}

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl StealQueues {
    /// Partitions `0..total` into `workers` contiguous ranges, earlier
    /// workers taking the remainder — the same split a static chunking
    /// scheme would use, so with no steals worker `w` visits exactly
    /// its old partition, in order.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `total` exceeds `u32::MAX`.
    pub fn new(total: usize, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker queue");
        assert!(u32::try_from(total).is_ok(), "index space fits in u32");
        let base = total / workers;
        let rem = total % workers;
        let mut start = 0usize;
        let queues: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < rem);
                let q = AtomicU64::new(pack(start as u32, (start + len) as u32));
                start += len;
                q
            })
            .collect();
        debug_assert_eq!(start, total);
        StealQueues {
            queues: queues.into_boxed_slice(),
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pops the next index from the front of worker `w`'s own queue.
    pub fn pop_own(&self, w: usize) -> Option<usize> {
        let q = &self.queues[w];
        let mut word = q.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(word);
            if head >= tail {
                return None;
            }
            match q.compare_exchange_weak(
                word,
                pack(head + 1, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(cur) => word = cur,
            }
        }
    }

    /// Steals an index from the back of worker `victim`'s queue.
    pub fn steal(&self, victim: usize) -> Option<usize> {
        let q = &self.queues[victim];
        let mut word = q.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(word);
            if head >= tail {
                return None;
            }
            match q.compare_exchange_weak(
                word,
                pack(head, tail - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((tail - 1) as usize),
                Err(cur) => word = cur,
            }
        }
    }

    /// The next index for worker `w`: its own queue first, then a
    /// round-robin sweep stealing from the other queues. `None` means
    /// every queue is empty — with no refills, the batch is drained.
    pub fn next(&self, w: usize) -> Option<usize> {
        if let Some(idx) = self.pop_own(w) {
            return Some(idx);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(idx) = self.steal((w + off) % n) {
                return Some(idx);
            }
        }
        None
    }

    /// Total indices not yet claimed, across all queues (approximate
    /// under concurrent claims; exact once workers are quiescent).
    pub fn remaining(&self) -> usize {
        self.queues
            .iter()
            .map(|q| {
                let (head, tail) = unpack(q.load(Ordering::Acquire));
                (tail - head) as usize
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn partitions_cover_index_space() {
        for total in 0..40usize {
            for workers in 1..9usize {
                let q = StealQueues::new(total, workers);
                let mut seen = BTreeSet::new();
                for w in 0..workers {
                    while let Some(idx) = q.pop_own(w) {
                        assert!(seen.insert(idx), "index {idx} claimed twice");
                    }
                }
                assert_eq!(seen.len(), total);
                assert_eq!(q.remaining(), 0);
            }
        }
    }

    #[test]
    fn owner_pops_in_serial_order() {
        let q = StealQueues::new(6, 1);
        let order: Vec<_> = std::iter::from_fn(|| q.next(0)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn thief_takes_from_the_back() {
        let q = StealQueues::new(4, 2);
        // Worker 0 owns [0,2), worker 1 owns [2,4).
        assert_eq!(q.steal(0), Some(1));
        assert_eq!(q.steal(0), Some(0));
        assert_eq!(q.steal(0), None);
        assert_eq!(q.pop_own(1), Some(2));
    }

    /// Stress loop: workers hammer `next` concurrently; every index is
    /// claimed exactly once, every round.
    #[test]
    fn contended_claims_are_exclusive_and_complete() {
        for _ in 0..100 {
            let total = 64;
            let workers = 4;
            let q = Arc::new(StealQueues::new(total, workers));
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(idx) = q.next(w) {
                            mine.push(idx);
                        }
                        mine
                    })
                })
                .collect();
            let mut seen = BTreeSet::new();
            for h in handles {
                for idx in h.join().unwrap() {
                    assert!(seen.insert(idx), "index {idx} claimed twice");
                }
            }
            assert_eq!(seen.len(), total);
        }
    }
}
