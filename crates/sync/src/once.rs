//! Write-once and take-once slots.
//!
//! The scheduler's result array used to be `Vec<Mutex<Option<R>>>`:
//! every store and every splice paid a lock acquisition even though
//! each slot is written exactly once, by exactly one worker, and read
//! exactly once, after all workers have joined. [`OnceSlot`] encodes
//! that protocol directly: a `set` is one compare-and-swap plus a
//! release store, and the completion check is a single atomic load.
//! [`TakeSlot`] is the mirror image for job hand-off: filled once at
//! construction, drained by exactly one claimant.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

const EMPTY: u8 = 0;
const BUSY: u8 = 1;
const READY: u8 = 2;
const TAKEN: u8 = 3;

/// A slot that can be written once from any thread and drained once.
///
/// The state machine is `EMPTY → BUSY → READY (→ TAKEN)`: `set` claims
/// the slot with a compare-and-swap, writes the value, then publishes
/// it with a release store, so a `READY` observation (acquire) always
/// sees the fully written value.
///
/// # Examples
///
/// ```
/// use flatwalk_sync::OnceSlot;
///
/// let slot = OnceSlot::new();
/// assert!(slot.set(7).is_ok());
/// assert!(slot.set(8).is_err(), "second write is rejected");
/// assert_eq!(slot.into_inner(), Some(7));
/// ```
pub struct OnceSlot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the slot hands the value across threads by value (`set` in,
// `take`/`into_inner` out); it never hands out shared references to the
// payload, so `T: Send` is the only requirement.
unsafe impl<T: Send> Send for OnceSlot<T> {}
unsafe impl<T: Send> Sync for OnceSlot<T> {}

impl<T> OnceSlot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        OnceSlot {
            state: AtomicU8::new(EMPTY),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Stores `value`, failing (and returning it back) if the slot has
    /// already been claimed by another writer.
    pub fn set(&self, value: T) -> Result<(), T> {
        if self
            .state
            .compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return Err(value);
        }
        // SAFETY: the EMPTY→BUSY transition above is won by exactly one
        // thread, so we have exclusive access to the cell until the
        // release store below publishes it.
        unsafe { (*self.value.get()).write(value) };
        self.state.store(READY, Ordering::Release);
        Ok(())
    }

    /// Whether a value has been published; a single acquire load.
    pub fn is_set(&self) -> bool {
        self.state.load(Ordering::Acquire) == READY
    }

    /// Drains the value. Exclusive access (`&mut`) means no
    /// synchronization is needed beyond the state check.
    pub fn take(&mut self) -> Option<T> {
        if *self.state.get_mut() != READY {
            return None;
        }
        *self.state.get_mut() = TAKEN;
        // SAFETY: state was READY, so the value was fully written and
        // has not been taken; the transition to TAKEN above makes this
        // the unique read.
        Some(unsafe { (*self.value.get()).assume_init_read() })
    }

    /// Consumes the slot, returning the value if one was published.
    pub fn into_inner(mut self) -> Option<T> {
        self.take()
    }
}

impl<T> Default for OnceSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for OnceSlot<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == READY {
            // SAFETY: READY means the value was fully written and never
            // taken, so it must be dropped exactly once, here.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
    }
}

impl<T> std::fmt::Debug for OnceSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnceSlot")
            .field("set", &self.is_set())
            .finish()
    }
}

/// A slot filled at construction and drained by exactly one claimant.
///
/// The scheduler pre-fills one `TakeSlot` per job; whichever worker
/// claims the job's index extracts it with a single atomic swap — no
/// per-slot `Mutex`, no `Option` left behind to lock around.
///
/// # Examples
///
/// ```
/// use flatwalk_sync::TakeSlot;
///
/// let slot = TakeSlot::new(String::from("job"));
/// assert_eq!(slot.take().as_deref(), Some("job"));
/// assert_eq!(slot.take(), None, "second take finds it gone");
/// ```
pub struct TakeSlot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: like `OnceSlot`, the payload only ever moves across threads
// by value; no shared references to it are exposed.
unsafe impl<T: Send> Send for TakeSlot<T> {}
unsafe impl<T: Send> Sync for TakeSlot<T> {}

impl<T> TakeSlot<T> {
    /// Creates a filled slot.
    pub fn new(value: T) -> Self {
        TakeSlot {
            state: AtomicU8::new(READY),
            value: UnsafeCell::new(MaybeUninit::new(value)),
        }
    }

    /// Extracts the value; `None` if another thread got here first.
    pub fn take(&self) -> Option<T> {
        if self
            .state
            .compare_exchange(READY, TAKEN, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // SAFETY: the READY→TAKEN transition is won by exactly one
        // thread; construction fully initialized the value, and the
        // acquire above orders this read after that initialization.
        Some(unsafe { (*self.value.get()).assume_init_read() })
    }
}

impl<T> Drop for TakeSlot<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == READY {
            // SAFETY: READY means the value was never taken; drop it
            // exactly once, here.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
    }
}

impl<T> std::fmt::Debug for TakeSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TakeSlot")
            .field("present", &(self.state.load(Ordering::Acquire) == READY))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn once_slot_set_take_roundtrip() {
        let mut slot = OnceSlot::new();
        assert!(!slot.is_set());
        assert!(slot.take().is_none());
        slot.set(42u64).unwrap();
        assert!(slot.is_set());
        assert_eq!(slot.take(), Some(42));
        assert!(slot.take().is_none(), "take drains the slot");
    }

    #[test]
    fn once_slot_rejects_second_write() {
        let slot = OnceSlot::new();
        slot.set(1).unwrap();
        assert_eq!(slot.set(2), Err(2));
        assert_eq!(slot.into_inner(), Some(1));
    }

    #[test]
    fn once_slot_drops_unclaimed_value() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = OnceSlot::new();
        assert!(slot.set(Canary(drops.clone())).is_ok());
        drop(slot);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn take_slot_single_winner() {
        let slot = TakeSlot::new(vec![1, 2, 3]);
        assert_eq!(slot.take(), Some(vec![1, 2, 3]));
        assert_eq!(slot.take(), None);
    }

    /// Stress loop: many threads race to publish into the same slot;
    /// exactly one write wins and the value survives intact.
    #[test]
    fn once_slot_contended_single_writer_wins() {
        for round in 0..200 {
            let slot = Arc::new(OnceSlot::new());
            let wins = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..4)
                .map(|t| {
                    let slot = Arc::clone(&slot);
                    let wins = Arc::clone(&wins);
                    std::thread::spawn(move || {
                        if slot.set((round, t)).is_ok() {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(wins.load(Ordering::SeqCst), 1);
            let slot = Arc::into_inner(slot).expect("all clones joined");
            let (got_round, _) = slot.into_inner().expect("a write must have landed");
            assert_eq!(got_round, round);
        }
    }

    /// Stress loop: many threads race to drain the same slot; exactly
    /// one take succeeds per round and nothing is dropped twice.
    #[test]
    fn take_slot_contended_single_taker_wins() {
        for _ in 0..200 {
            let slot = Arc::new(TakeSlot::new(Box::new(99u64)));
            let takes = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let slot = Arc::clone(&slot);
                    let takes = Arc::clone(&takes);
                    std::thread::spawn(move || {
                        if let Some(v) = slot.take() {
                            assert_eq!(*v, 99);
                            takes.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(takes.load(Ordering::SeqCst), 1);
        }
    }
}
