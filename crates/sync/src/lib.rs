//! Hand-rolled lock-free concurrency primitives for the flatwalk runtime.
//!
//! The experiment harness spends its wall-clock in three concurrent
//! structures: the cell scheduler that fans a grid out over worker
//! threads, the setup cache consulted on every cell, and the serve-side
//! result cache consulted on every request. This crate provides the
//! primitives that make all three hot paths lock-free:
//!
//! * [`StealQueues`] — per-worker index queues with a steal path, so a
//!   skewed grid (one 10x-cost cell) no longer strands the other
//!   workers behind a static partition.
//! * [`OnceSlot`] / [`TakeSlot`] — write-once result storage and
//!   take-once job storage, replacing per-slot `Mutex<Option<T>>` with
//!   a single atomic flag transition.
//! * [`SwapMap`] — a sharded read-mostly map whose readers never touch
//!   a `Mutex`: lookups load an epoch-style published snapshot, writers
//!   clone-on-insert and atomically swap the snapshot in.
//!
//! Everything is built on `std::sync::atomic` only — no external
//! dependencies — and each primitive carries stress-loop tests.
//!
//! This is the one flatwalk crate that uses `unsafe`; the rest of the
//! workspace keeps `#![forbid(unsafe_code)]` and builds on the safe
//! APIs exported here.

mod once;
mod prefetch;
mod steal;
mod swap;

pub use once::{OnceSlot, TakeSlot};
pub use prefetch::prefetch_read;
pub use steal::StealQueues;
pub use swap::SwapMap;
