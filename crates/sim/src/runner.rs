//! Deterministic parallel experiment runner.
//!
//! Every figure in the paper is a grid of independent simulations —
//! (workload × translation config × fragmentation scenario) cells —
//! and each cell owns all of its state (address space, hierarchy,
//! TLBs, seeded RNGs), so cells can run on any thread in any order
//! without perturbing results. This module fans a job list across a
//! bounded pool of scoped worker threads using a work-stealing
//! scheduler ([`flatwalk_sync::StealQueues`]) and reassembles the
//! results **in declaration order**, making the output of every
//! experiment byte-identical to the serial run regardless of thread
//! count.
//!
//! Thread count resolution (first match wins):
//!
//! 1. an explicit `--threads N` argument (parsed by the caller, passed
//!    in via [`resolve_threads`]),
//! 2. the `FLATWALK_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! The resolved count is then clamped to the host's available
//! parallelism when sizing the actual pool (override with
//! `FLATWALK_THREADS_EXACT=1`); see [`run_ordered`].
//!
//! Progress (cells done, simulated ops/s, ETA) is reported on stderr
//! only — stdout carries nothing but the experiment's own output — and
//! only when stderr is a terminal or `FLATWALK_PROGRESS=1` forces it.

use std::cell::RefCell;
use std::io::{IsTerminal, Write};
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flatwalk_os::FragmentationScenario;
use flatwalk_sync::{OnceSlot, StealQueues, TakeSlot};
use flatwalk_workloads::WorkloadSpec;

use crate::setup::{self, setup_stats, SetupStats};
use crate::{NativeSimulation, RivalKind, SimOptions, SimReport, TranslationConfig};

/// How one cell of a grid ended: its report, or a structured failure
/// record. Each cell runs inside its own fault domain
/// (`catch_unwind` + bounded retries + a soft wall-clock deadline), so
/// one bad cell never takes down the rest of the grid.
#[derive(Debug, Clone)]
// `Ok` is the overwhelmingly common variant; boxing its report to
// shrink the rare `Failed` would cost an allocation per cell.
#[allow(clippy::large_enum_variant)]
pub enum CellOutcome {
    /// The cell completed (possibly after retries).
    Ok {
        /// The simulation's report.
        report: SimReport,
        /// Nanoseconds the successful attempt spent building (0 for
        /// fully cached setups).
        setup_nanos: u64,
        /// Nanoseconds the successful attempt spent simulating.
        run_nanos: u64,
        /// Failed attempts before this one succeeded.
        retries: u32,
    },
    /// Every attempt failed (structured `SimError` or caught panic).
    Failed {
        /// Human-readable description of the last failure.
        error: String,
        /// Failed attempts beyond the first.
        retries: u32,
    },
}

impl CellOutcome {
    /// The report, if the cell completed.
    pub fn report(&self) -> Option<&SimReport> {
        match self {
            CellOutcome::Ok { report, .. } => Some(report),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Whether the cell exhausted its fault domain without completing.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }
}

/// A cooperative cancellation flag shared between a batch's owner and
/// its workers. Once [`cancel`](CancelFlag::cancel)led, every
/// not-yet-started cell completes immediately as
/// [`CellOutcome::Failed`] with a `"cancelled"` error, and a *running*
/// attempt stops at its next engine batch boundary (the engine polls
/// [`span_checkpoint`] between spans — never inside one, so every
/// span's state transitions stay byte-identical to an uninterrupted
/// run; the interrupted cell simply reports `Failed` instead of a
/// partial result). Used by `flatwalk-serve` for forced shutdown, job
/// deadlines, and stall recovery.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, uncancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Irrevocable; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bounded retry budget per cell: `FLATWALK_CELL_RETRIES` (default 1 —
/// one re-attempt after a failure).
fn cell_retries() -> u32 {
    std::env::var("FLATWALK_CELL_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// Per-cell wall-clock deadline: `FLATWALK_CELL_DEADLINE_SECS`
/// (default 300). A running attempt that crosses the deadline is
/// cancelled cooperatively at its next engine batch boundary (see
/// [`span_checkpoint`]) and the deadline also gates retries, so a
/// deadline-exceeded cell fails promptly instead of only being
/// reported late.
fn cell_deadline() -> Duration {
    let secs = std::env::var("FLATWALK_CELL_DEADLINE_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(300);
    Duration::from_secs(secs)
}

/// The interrupt state one in-flight cell attempt is guarded by:
/// everything [`span_checkpoint`] consults between engine spans.
#[derive(Debug, Clone)]
struct AttemptGuard {
    /// Absolute wall-clock deadline (cell start + `cell_deadline()`).
    deadline: Instant,
    /// Cooperative cancellation from the cell's owner (a serve job's
    /// flag installed via [`scoped_cancel`]), if any.
    cancel: Option<CancelFlag>,
    /// Injected per-span wall delay (`slow` fault profile), if any.
    slow: Option<Duration>,
}

thread_local! {
    /// The attempt guard armed by [`run_cell_guarded`] for the cell
    /// currently executing on this thread, if any. Cells run wholly on
    /// one worker thread, so a thread-local (not a task context) is the
    /// right scope — and costs one TLS read per engine span.
    static ATTEMPT_GUARD: RefCell<Option<AttemptGuard>> = const { RefCell::new(None) };

    /// Stack of scoped cancel flags (mirrors `flatwalk_faults`'
    /// scoped-plan stack): the innermost flag guards every cell attempt
    /// started inside the scope.
    static SCOPED_CANCEL: RefCell<Vec<CancelFlag>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a scoped per-job [`CancelFlag`] (see
/// [`scoped_cancel`]). Restores the previous resolution when dropped.
/// Not `Send`: the scope must end on the thread that opened it.
#[must_use = "the scope ends when this guard is dropped"]
#[derive(Debug)]
pub struct ScopedCancel {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopedCancel {
    fn drop(&mut self) {
        SCOPED_CANCEL.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Installs `flag` as the ambient cancel source for every cell attempt
/// started on this thread until the returned guard is dropped. Scopes
/// nest; the innermost wins. `flatwalk-serve` wraps each served cell's
/// execution in a scope carrying the owning job's flag, so cancelling
/// the job interrupts the running cell at its next batch boundary.
pub fn scoped_cancel(flag: CancelFlag) -> ScopedCancel {
    SCOPED_CANCEL.with(|s| s.borrow_mut().push(flag));
    ScopedCancel {
        _not_send: PhantomData,
    }
}

/// The innermost scoped cancel flag on this thread, if any.
fn ambient_cancel() -> Option<CancelFlag> {
    SCOPED_CANCEL.with(|s| s.borrow().last().cloned())
}

/// Arms [`ATTEMPT_GUARD`] for the dynamic extent of one cell attempt;
/// disarms on drop (including unwinds out of `catch_unwind`).
struct ArmedAttempt;

impl ArmedAttempt {
    fn arm(guard: AttemptGuard) -> Self {
        ATTEMPT_GUARD.with(|g| *g.borrow_mut() = Some(guard));
        ArmedAttempt
    }
}

impl Drop for ArmedAttempt {
    fn drop(&mut self) {
        ATTEMPT_GUARD.with(|g| *g.borrow_mut() = None);
    }
}

/// The engine's between-spans poll point. Called by
/// `engine::run_single` before each batched span and by
/// `engine::run_multicore` before each round; outside a guarded cell
/// attempt it is a no-op returning `Ok(())`.
///
/// Applies the active fault plan's injected slow-cell delay (pure wall
/// time — no modeled quantity changes), then reports whether the
/// attempt should stop: the owner's [`CancelFlag`] fired, or the cell's
/// wall-clock deadline passed. The engine converts an `Err` into a
/// structured `WalkError::Cancelled` failure for this cell only — spans
/// already completed keep their byte-identical effects.
pub fn span_checkpoint() -> Result<(), &'static str> {
    ATTEMPT_GUARD.with(|g| {
        let guard = g.borrow();
        let Some(guard) = guard.as_ref() else {
            return Ok(());
        };
        if let Some(delay) = guard.slow {
            std::thread::sleep(delay);
        }
        if guard.cancel.as_ref().is_some_and(CancelFlag::is_cancelled) {
            return Err("cancelled by owner");
        }
        if Instant::now() >= guard.deadline {
            return Err("cell deadline exceeded");
        }
        Ok(())
    })
}

/// Entry point a rival-scheme crate supplies to run one cell under a
/// [`RivalKind`]. A plain `fn` pointer: `Copy`/`Debug` like the rest of
/// the cell, and `flatwalk_sim` stays free of a dependency on the
/// scheme implementations (they depend on *us*).
pub type RivalRunner = fn(&Cell, RivalKind) -> Result<SimReport, crate::SimError>;

/// One independent experiment cell: a single native simulation.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The workload to simulate.
    pub workload: WorkloadSpec,
    /// The translation mechanism under test.
    pub config: TranslationConfig,
    /// Memory fragmentation scenario (already applied to `opts`).
    pub scenario: FragmentationScenario,
    /// Remaining simulation options (scenario applied, shared by
    /// reference count — workers never clone the nested configs).
    pub opts: Arc<SimOptions>,
    /// Rival scheme to run instead of the native simulation, if any.
    /// The kind is data (result caches fold it into their keys); the
    /// runner function is supplied by the scheme crate at grid build.
    pub rival: Option<(RivalKind, RivalRunner)>,
}

impl Cell {
    /// Creates a cell; `scenario` overrides whatever `opts` carries.
    pub fn new(
        workload: WorkloadSpec,
        config: TranslationConfig,
        scenario: FragmentationScenario,
        opts: SimOptions,
    ) -> Self {
        Cell {
            workload,
            config,
            scenario,
            opts: Arc::new(opts.with_scenario(scenario)),
            rival: None,
        }
    }

    /// Creates a cell that runs a rival scheme through `runner` instead
    /// of the native simulation (same workload/options machinery, same
    /// result caching).
    pub fn rival(
        workload: WorkloadSpec,
        config: TranslationConfig,
        scenario: FragmentationScenario,
        opts: SimOptions,
        kind: RivalKind,
        runner: RivalRunner,
    ) -> Self {
        let mut cell = Cell::new(workload, config, scenario, opts);
        cell.rival = Some((kind, runner));
        cell
    }

    /// Simulated operations this cell executes (warm-up + measured).
    pub fn sim_ops(&self) -> u64 {
        self.opts.warmup_ops + self.opts.measure_ops
    }

    /// Emits this cell's per-node NUMA placement summary onto the
    /// `numa` trace channel (no-op when the channel is off or the cell
    /// ran on the single-node identity topology).
    fn emit_numa_trace(report: &SimReport) {
        if !flatwalk_obs::trace::numa_enabled() || !report.hier.numa.multi_node() {
            return;
        }
        let nodes = report.hier.numa.nodes as usize;
        for (i, n) in report.hier.numa.per_node[..nodes].iter().enumerate() {
            flatwalk_obs::trace::emit_numa(&flatwalk_obs::trace::NumaRecord {
                node: i as u32,
                local: n.local,
                remote: n.remote,
                hops: n.hops,
            });
        }
    }

    /// Builds and runs the simulation. The immutable setup artifacts
    /// (frozen address space, stream prefix) come from the process-wide
    /// setup cache, so cells sharing a space key build it once; all
    /// mutable state is constructed locally, so this is safe to call
    /// from any worker thread.
    pub fn run(&self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Cell::run`] but surfaces an untranslatable access as a
    /// structured [`SimError`](crate::SimError) instead of panicking.
    pub fn try_run(&self) -> Result<SimReport, crate::SimError> {
        let report = if let Some((kind, run)) = self.rival {
            run(self, kind)?
        } else {
            NativeSimulation::build_shared(
                self.workload.clone(),
                self.config.clone(),
                Arc::clone(&self.opts),
            )
            .try_run()?
        };
        Self::emit_numa_trace(&report);
        Ok(report)
    }
}

/// Resolves the worker-thread count: `explicit` (e.g. from `--threads`)
/// if given, else `FLATWALK_THREADS`, else the machine's available
/// parallelism. Always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("FLATWALK_THREADS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Live progress/throughput meter for one job batch (stderr only).
#[derive(Debug)]
pub struct Progress {
    label: &'static str,
    total: usize,
    done: AtomicUsize,
    ops_done: AtomicU64,
    /// Milliseconds (since `start`) before which no further progress
    /// line is printed; claimed via compare-exchange so that exactly
    /// one thread prints per interval.
    next_print_ms: AtomicU64,
    start: Instant,
    /// Setup-cache counters at meter creation; the line shows the delta
    /// contributed by this batch.
    setup_base: SetupStats,
    /// Global walk-step counters `(cache_hits, total)` at meter
    /// creation; the line shows this batch's aggregate walk-hit ratio.
    walk_base: (u64, u64),
    enabled: bool,
}

impl Progress {
    const PRINT_EVERY_MS: u64 = 200;

    /// Creates a meter for `total` jobs under the given display label.
    ///
    /// Reporting is enabled when stderr is a terminal, forced on by
    /// `FLATWALK_PROGRESS=1` and off by `FLATWALK_PROGRESS=0`.
    pub fn new(label: &'static str, total: usize) -> Self {
        let enabled = match std::env::var("FLATWALK_PROGRESS") {
            Ok(v) if v == "0" => false,
            Ok(v) if !v.is_empty() => true,
            _ => std::io::stderr().is_terminal(),
        };
        Progress {
            label,
            total,
            done: AtomicUsize::new(0),
            ops_done: AtomicU64::new(0),
            next_print_ms: AtomicU64::new(0),
            start: Instant::now(),
            setup_base: setup_stats(),
            walk_base: crate::engine::walk_step_counters(),
            enabled,
        }
    }

    /// A meter that counts ticks but never prints, regardless of
    /// `FLATWALK_PROGRESS` — for embedders (the serve worker pool)
    /// that report progress through their own channel.
    pub fn quiet(total: usize) -> Self {
        Progress {
            label: "",
            total,
            done: AtomicUsize::new(0),
            ops_done: AtomicU64::new(0),
            next_print_ms: AtomicU64::new(0),
            start: Instant::now(),
            setup_base: SetupStats::default(),
            walk_base: (0, 0),
            enabled: false,
        }
    }

    /// Records one finished job that simulated `ops` operations.
    pub fn tick(&self, ops: u64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let ops_done = self.ops_done.fetch_add(ops, Ordering::Relaxed) + ops;
        if !self.enabled {
            return;
        }
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let due = self.next_print_ms.load(Ordering::Relaxed);
        let finished = done == self.total;
        if !finished
            && (elapsed_ms < due
                || self
                    .next_print_ms
                    .compare_exchange(
                        due,
                        elapsed_ms + Self::PRINT_EVERY_MS,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err())
        {
            return;
        }
        let secs = (elapsed_ms as f64 / 1e3).max(1e-9);
        let rate = ops_done as f64 / secs;
        let eta = if done > 0 {
            secs * (self.total - done) as f64 / done as f64
        } else {
            0.0
        };
        let cache = setup_stats().since(&self.setup_base);
        // Aggregate walk-hit ratio of the batch's completed cells (from
        // the global metrics registry; empty until a cell finishes).
        let (hits, total_steps) = crate::engine::walk_step_counters();
        let walk_hit = {
            let h = hits.saturating_sub(self.walk_base.0);
            let t = total_steps.saturating_sub(self.walk_base.1);
            if t > 0 {
                format!("walk-hit {:.1}% · ", 100.0 * h as f64 / t as f64)
            } else {
                String::new()
            }
        };
        let mut err = std::io::stderr().lock(); // lock-ok: progress printer
        let _ = write!(
            err,
            "\r[{}] {}/{} cells · {:.1} M sim-ops/s · {}cache {} hit/{} miss · setup {:.1}s / run {:.1}s · ETA {:.0}s ",
            self.label,
            done,
            self.total,
            rate / 1e6,
            walk_hit,
            cache.hits,
            cache.misses,
            cache.setup_nanos as f64 / 1e9,
            cache.run_nanos as f64 / 1e9,
            eta
        );
        if finished {
            let _ = writeln!(err, "· done in {secs:.1}s");
        }
        let _ = err.flush();
    }
}

/// Number of worker threads actually spawned for a `threads`-way
/// request over `total` jobs.
///
/// By default the pool is sized to
/// `min(threads, available_parallelism, total)`: asking for more
/// workers than the host has cores only adds coordination overhead
/// (the old behavior made `runner_grid/8cells_t4_ms` *slower* than t1
/// on a 1-core CI box). Results are spliced by job index, so the
/// clamp cannot change any output byte. Set `FLATWALK_THREADS_EXACT=1`
/// to restore the old spawn-exactly-what-was-asked behavior (useful
/// for oversubscription experiments).
fn effective_workers(threads: usize, total: usize) -> usize {
    let exact = std::env::var("FLATWALK_THREADS_EXACT").is_ok_and(|v| v.trim() == "1");
    let cap = if exact {
        threads
    } else {
        threads.min(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(threads),
        )
    };
    cap.min(total).max(1)
}

/// Runs `jobs` across `threads` workers, returning results in job
/// order. `weight(job)` feeds the progress meter (simulated ops).
///
/// The pool is sized by [`effective_workers`] (clamped to the host's
/// available parallelism unless `FLATWALK_THREADS_EXACT=1`). With one
/// effective worker (or one job) this degenerates to a plain serial
/// loop on the calling thread — no pool, identical evaluation order.
pub fn run_ordered<J, R, F, W>(
    jobs: Vec<J>,
    threads: usize,
    progress: &Progress,
    weight: W,
    f: F,
) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
    W: Fn(&J) -> u64 + Sync,
{
    let workers = effective_workers(threads, jobs.len());
    run_ordered_workers(jobs, workers, progress, weight, f)
}

/// [`run_ordered`] with an exact worker count (no parallelism clamp):
/// the work-stealing scheduler itself.
///
/// Each worker owns a contiguous slice of the job index space as a
/// deque ([`StealQueues`]): it pops its own range front-to-back (the
/// serial visit order) and, once drained, steals from the *back* of
/// the other workers' ranges — so a skewed grid (one 10x-cost cell)
/// no longer strands the remaining workers behind a static partition.
/// Jobs hand off through take-once slots and results land in
/// write-once slots ([`TakeSlot`]/[`OnceSlot`] — one atomic
/// transition each, no per-slot `Mutex`), then are spliced back **in
/// job-index order**, making the output byte-identical to the serial
/// run at any thread count.
///
/// # Panics
///
/// A panicking job does not abort the batch mid-flight: every
/// remaining job still runs to completion inside its own fault domain,
/// then the panic of the lowest-indexed failed job is re-raised on the
/// caller. A failed batch therefore never yields a partial result
/// vector, but it also never wastes the work of its healthy jobs'
/// side effects (setup-cache fills, recorded metrics).
pub fn run_ordered_workers<J, R, F, W>(
    jobs: Vec<J>,
    workers: usize,
    progress: &Progress,
    weight: W,
    f: F,
) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
    W: Fn(&J) -> u64 + Sync,
{
    type Panic = Box<dyn std::any::Any + Send>;
    /// Keeps the panic of the lowest-indexed failed job (the one a
    /// serial run would have hit first).
    fn note_panic(first: &Mutex<Option<(usize, Panic)>>, index: usize, payload: Panic) {
        let mut slot = first.lock().unwrap_or_else(|e| e.into_inner()); // lock-ok: panic path
        if slot.as_ref().is_none_or(|(i, _)| index < *i) {
            *slot = Some((index, payload));
        }
    }

    let total = jobs.len();
    let first_panic: Mutex<Option<(usize, Panic)>> = Mutex::new(None);
    if workers <= 1 || total <= 1 {
        let results = jobs
            .into_iter()
            .enumerate()
            .filter_map(|(index, job)| {
                let ops = weight(&job);
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(job)));
                progress.tick(ops);
                match result {
                    Ok(r) => Some(r),
                    Err(payload) => {
                        note_panic(&first_panic, index, payload);
                        None
                    }
                }
            })
            .collect();
        if let Some((_, payload)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            std::panic::resume_unwind(payload);
        }
        return results;
    }

    let job_slots: Vec<TakeSlot<J>> = jobs.into_iter().map(TakeSlot::new).collect();
    let result_slots: Vec<OnceSlot<R>> = (0..total).map(|_| OnceSlot::new()).collect();
    let queues = StealQueues::new(total, workers.min(total));

    std::thread::scope(|scope| {
        for w in 0..queues.workers() {
            let queues = &queues;
            let job_slots = &job_slots;
            let result_slots = &result_slots;
            let first_panic = &first_panic;
            let weight = &weight;
            let f = &f;
            scope.spawn(move || {
                while let Some(index) = queues.next(w) {
                    let job = job_slots[index]
                        .take()
                        .expect("a claimed index is claimed exactly once");
                    let ops = weight(&job);
                    match std::panic::catch_unwind(AssertUnwindSafe(|| f(job))) {
                        Ok(result) => {
                            assert!(
                                result_slots[index].set(result).is_ok(),
                                "a result slot is written exactly once"
                            );
                        }
                        Err(payload) => note_panic(first_panic, index, payload),
                    }
                    progress.tick(ops);
                }
            });
        }
    });

    if let Some((_, payload)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        std::panic::resume_unwind(payload);
    }
    result_slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled by the pool"))
        .collect()
}

/// Expands and runs a batch of [`Cell`]s on `threads` workers,
/// returning `SimReport`s in cell order (byte-identical to a serial
/// run — each cell owns its seeded RNGs and shares no state).
///
/// # Panics
///
/// Panics if any cell failed — but only after the whole grid has
/// completed, so every healthy cell's side effects (cache fills,
/// metrics) land first. Callers that want the structured failure
/// records use [`run_cells_timed`].
pub fn run_cells(label: &'static str, cells: Vec<Cell>, threads: usize) -> Vec<SimReport> {
    run_cells_timed(label, cells, threads)
        .into_iter()
        .map(|o| match o {
            CellOutcome::Ok { report, .. } => report,
            CellOutcome::Failed { error, retries } => {
                panic!("cell failed after {retries} retries: {error}")
            }
        })
        .collect()
}

/// Like [`run_cells`] but returns each cell's outcome — report plus
/// setup/run wall time, or a structured failure record — and merges
/// every completed cell's metrics into the global registry as it
/// finishes (feeding the progress line's walk-hit ratio and the
/// `--json` report's aggregate metrics).
///
/// Each cell executes in its own fault domain: panics and
/// [`SimError`](crate::SimError)s are caught, retried up to
/// `FLATWALK_CELL_RETRIES` times while the soft
/// `FLATWALK_CELL_DEADLINE_SECS` wall-clock deadline permits, and
/// reported as [`CellOutcome::Failed`] while the rest of the grid runs
/// to completion. An installed poison fault plan
/// ([`flatwalk_faults::FaultPlan::poisons`]) fails its designated cell
/// here, before the simulation is even built.
pub fn run_cells_timed(label: &'static str, cells: Vec<Cell>, threads: usize) -> Vec<CellOutcome> {
    run_cells_timed_cancellable(label, cells, threads, None)
}

/// Like [`run_cells_timed`] but checks a [`CancelFlag`] between cells
/// *and* between engine batch spans: once cancelled, every
/// not-yet-started cell completes immediately as
/// [`CellOutcome::Failed`] with a `"cancelled"` error, and already
/// running attempts stop at their next batch boundary (completed spans
/// keep their byte-identical effects; the interrupted cell reports
/// `Failed`, never a partial result).
pub fn run_cells_timed_cancellable(
    label: &'static str,
    cells: Vec<Cell>,
    threads: usize,
    cancel: Option<&CancelFlag>,
) -> Vec<CellOutcome> {
    let progress = Progress::new(label, cells.len());
    let total = cells.len();
    let indexed: Vec<(usize, Cell)> = cells.into_iter().enumerate().collect();
    run_ordered(
        indexed,
        threads,
        &progress,
        |(_, cell)| cell.sim_ops(),
        |(index, cell)| {
            if cancel.is_some_and(CancelFlag::is_cancelled) {
                return CellOutcome::Failed {
                    error: format!("cancelled before start: cell {index} of {total}"),
                    retries: 0,
                };
            }
            // Running attempts also observe the flag — at the next
            // engine batch boundary, via the scoped ambient cancel.
            let _cancel_scope = cancel.map(|c| scoped_cancel(c.clone()));
            run_cell_guarded(index, total, &cell)
        },
    )
}

/// Runs a single grid cell inside the same fault domain as
/// [`run_cells_timed`] — poison check against `(index, total)`, panic
/// and [`SimError`](crate::SimError) capture, bounded retries, soft
/// deadline, and global metrics merge on success. `flatwalk-serve`
/// executes cells one at a time through this entry point so that a
/// served cell's outcome is byte-identical to the same cell's outcome
/// inside a whole-grid [`run_cells_timed`] run.
pub fn run_cell_outcome(index: usize, total: usize, cell: &Cell) -> CellOutcome {
    run_cell_guarded(index, total, cell)
}

/// Runs one cell inside its fault domain (see [`run_cells_timed`]).
fn run_cell_guarded(index: usize, total: usize, cell: &Cell) -> CellOutcome {
    let _cell_span = flatwalk_obs::span::enter("cell");
    let plan = flatwalk_faults::active();
    let max_retries = cell_retries();
    let deadline = cell_deadline();
    let started = Instant::now();
    let cancel = ambient_cancel();
    let slow = plan
        .as_deref()
        .and_then(|p| p.slow_span_delay(index, total));
    let mut retries = 0u32;
    loop {
        setup::begin_cell_timing();
        // One attempt span per retry-loop iteration, covering the
        // poison check, build, and run (retries show up as repeated
        // `cell;cell.attempt` closes under one `cell`).
        let _attempt_span = flatwalk_obs::span::enter("cell.attempt");
        // Armed for exactly this attempt: the engine polls
        // `span_checkpoint` between spans, so a cancelled or
        // deadline-exceeded attempt stops at the next batch boundary.
        let armed = ArmedAttempt::arm(AttemptGuard {
            deadline: started + deadline,
            cancel: cancel.clone(),
            slow,
        });
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = plan.as_deref() {
                if plan.poisons(index, total) {
                    panic!(
                        "poison cell: fault plan seed {} poisons cell {index} of {total}",
                        plan.seed
                    );
                }
            }
            cell.try_run()
        }));
        drop(armed);
        let error = match attempt {
            Ok(Ok(report)) => {
                let (setup_nanos, run_nanos) = setup::cell_timing();
                flatwalk_obs::metrics::merge_global(&report.metrics());
                return CellOutcome::Ok {
                    report,
                    setup_nanos,
                    run_nanos,
                    retries,
                };
            }
            Ok(Err(e)) => e.to_string(),
            Err(payload) => panic_message(payload.as_ref()),
        };
        // Never retry a cancelled attempt: the owner asked the cell to
        // stop, so burning the remaining budget re-running it would
        // defeat the interruption.
        if cancel.as_ref().is_some_and(CancelFlag::is_cancelled) {
            return CellOutcome::Failed {
                error: format!("cancelled mid-run: cell {index} of {total}: {error}"),
                retries,
            };
        }
        if retries >= max_retries || started.elapsed() >= deadline {
            return CellOutcome::Failed { error, retries };
        }
        retries += 1;
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_regardless_of_threads() {
        let jobs: Vec<u64> = (0..67).collect();
        let progress = Progress::new("t", jobs.len());
        let serial = run_ordered_workers(jobs.clone(), 1, &progress, |_| 1, |j| j * j);
        // `run_ordered_workers` bypasses the parallelism clamp, so the
        // stealing pool genuinely runs 5 workers even on a 1-core host.
        let progress = Progress::new("t", jobs.len());
        let parallel = run_ordered_workers(jobs, 5, &progress, |_| 1, |j| j * j);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 100);
    }

    #[test]
    fn pool_larger_than_job_list() {
        let progress = Progress::new("t", 2);
        let out = run_ordered_workers(vec![1u64, 2], 16, &progress, |_| 1, |j| j + 1);
        assert_eq!(out, vec![2, 3]);
    }

    /// An artificially skewed grid — one job 10x the cost of the rest —
    /// must still splice byte-identically to the serial golden at every
    /// worker count, and the expensive job must be stealable (other
    /// workers drain the rest of the grid meanwhile).
    #[test]
    fn skewed_grid_matches_serial_golden_at_t1_t2_t8() {
        let jobs: Vec<u64> = (0..33).collect();
        let skewed_cost = |j: &u64| if *j == 3 { 10_000u64 } else { 1_000 };
        let run_job = move |j: u64| {
            // Deterministic busywork proportional to the job's cost.
            let spins = skewed_cost(&j);
            let mut acc = j;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (j, acc)
        };
        let progress = Progress::new("t", jobs.len());
        let golden = run_ordered_workers(jobs.clone(), 1, &progress, skewed_cost, run_job);
        for workers in [2usize, 8] {
            let progress = Progress::new("t", jobs.len());
            let out = run_ordered_workers(jobs.clone(), workers, &progress, skewed_cost, run_job);
            assert_eq!(out, golden, "workers={workers}");
        }
    }

    #[test]
    fn effective_workers_clamps_to_parallelism_and_jobs() {
        // Independent of the host: never more workers than jobs, never
        // fewer than one.
        assert_eq!(effective_workers(4, 2).max(1), effective_workers(4, 2));
        assert!(effective_workers(4, 2) <= 2);
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(8, 0), 1);
        // And never more than the host can run, unless the exact
        // override is set (not set under the test harness).
        if std::env::var("FLATWALK_THREADS_EXACT").is_err() {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            assert!(effective_workers(1024, 1024) <= cores);
        }
    }

    #[test]
    fn empty_batch() {
        let progress = Progress::new("t", 0);
        let out: Vec<u64> = run_ordered(Vec::new(), 4, &progress, |_| 1, |j: u64| j);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "clamped to at least one");
    }

    #[test]
    fn panic_completes_batch_then_propagates() {
        for workers in [1usize, 2] {
            let completed = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(|| {
                let progress = Progress::new("t", 5);
                run_ordered_workers(
                    vec![1u64, 2, 3, 4, 5],
                    workers,
                    &progress,
                    |_| 1,
                    |j| {
                        assert!(j != 2, "boom");
                        completed.fetch_add(1, Ordering::Relaxed);
                        j
                    },
                )
            });
            assert!(result.is_err(), "the panic still reaches the caller");
            assert_eq!(
                completed.load(Ordering::Relaxed),
                4,
                "every non-panicking job ran to completion first (workers={workers})"
            );
        }
    }

    #[test]
    fn first_panic_in_job_order_wins() {
        let result = std::panic::catch_unwind(|| {
            let progress = Progress::new("t", 4);
            run_ordered(
                vec![1u64, 2, 3, 4],
                1,
                &progress,
                |_| 1,
                |j| {
                    assert!(j < 3, "boom {j}");
                    j
                },
            )
        });
        let payload = result.expect_err("batch with failures re-raises");
        let message = payload
            .downcast_ref::<String>()
            .expect("assert! payload is a String");
        assert!(message.contains("boom 3"), "lowest failed index: {message}");
    }

    #[test]
    fn cancel_flag_starts_clear_and_latches() {
        let flag = CancelFlag::new();
        assert!(!flag.is_cancelled());
        let clone = flag.clone();
        clone.cancel();
        assert!(flag.is_cancelled(), "clones share one underlying flag");
    }

    #[test]
    fn cancelled_batch_fails_remaining_cells_without_running() {
        // A pre-cancelled flag must fail every cell up front: nothing is
        // built or simulated, and the failure records carry the cell
        // indices.
        let opts = SimOptions::small_test();
        let cells: Vec<Cell> = (0..3)
            .map(|_| {
                Cell::new(
                    flatwalk_workloads::WorkloadSpec::by_name("gups")
                        .expect("gups workload exists")
                        .scaled_down(1 << 13),
                    TranslationConfig::baseline(),
                    FragmentationScenario::NONE,
                    opts.clone(),
                )
            })
            .collect();
        let flag = CancelFlag::new();
        flag.cancel();
        let outcomes = run_cells_timed_cancellable("cancel-test", cells, 1, Some(&flag));
        assert_eq!(outcomes.len(), 3);
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                CellOutcome::Failed { error, retries } => {
                    assert!(error.contains("cancelled"), "{error}");
                    assert!(error.contains(&format!("cell {i} of 3")), "{error}");
                    assert_eq!(*retries, 0);
                }
                CellOutcome::Ok { .. } => panic!("cell {i} ran despite cancellation"),
            }
        }
    }

    #[test]
    fn cancel_interrupts_running_cell_at_batch_boundary() {
        // A `slow` fault plan stretches the victim cell to hundreds of
        // milliseconds of wall time (≥ 20 ms per engine span); a cancel
        // fired shortly after start must interrupt it mid-run at a span
        // boundary instead of letting it finish.
        let opts = SimOptions::small_test();
        let cell = Cell::new(
            flatwalk_workloads::WorkloadSpec::by_name("gups")
                .expect("gups workload exists")
                .scaled_down(1 << 13),
            TranslationConfig::baseline(),
            FragmentationScenario::NONE,
            opts,
        );
        let plan = flatwalk_faults::FaultPlan::new(0, flatwalk_faults::FaultProfile::Slow);
        assert!(plan.slow_span_delay(0, 1).is_some(), "cell 0 is the victim");
        let _plan_scope = flatwalk_faults::scoped(Some(plan));
        let flag = CancelFlag::new();
        let _cancel_scope = scoped_cancel(flag.clone());
        let canceller = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                flag.cancel();
            })
        };
        let outcome = run_cell_outcome(0, 1, &cell);
        canceller.join().expect("canceller thread");
        match outcome {
            CellOutcome::Failed { error, retries } => {
                assert!(error.contains("cancelled"), "{error}");
                assert_eq!(retries, 0, "a cancelled attempt is never retried");
            }
            CellOutcome::Ok { .. } => panic!("cell outran a 30 ms cancel despite slow faults"),
        }
    }

    #[test]
    fn span_checkpoint_is_a_noop_outside_a_guarded_attempt() {
        assert!(span_checkpoint().is_ok());
    }

    #[test]
    fn retry_and_deadline_env_defaults() {
        // Not set by any test harness: documents the defaults the fault
        // domain runs with.
        if std::env::var("FLATWALK_CELL_RETRIES").is_err() {
            assert_eq!(cell_retries(), 1);
        }
        if std::env::var("FLATWALK_CELL_DEADLINE_SECS").is_err() {
            assert_eq!(cell_deadline(), Duration::from_secs(300));
        }
    }
}
