//! Simulation result reporting.

use flatwalk_faults::FaultStats;
use flatwalk_mem::{CacheStats, EnergyBreakdown, HierarchyStats};
use flatwalk_mmu::WalkerStats;
use flatwalk_obs::{Json, MetricsSnapshot};
use flatwalk_pt::NodeCensus;
use flatwalk_tlb::TlbSystemStats;
use flatwalk_types::stats::HitMiss;

/// The measured outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Benchmark name.
    pub workload: String,
    /// Configuration label ("Base", "FPT+PTP", …).
    pub config: &'static str,
    /// Instructions retired during measurement (memory ops + work).
    pub instructions: u64,
    /// Cycles accumulated during measurement.
    pub cycles: u64,
    /// Page-walk statistics ("memory requests per page walk" and walk
    /// latency — Fig. 1/10).
    pub walk: WalkerStats,
    /// TLB statistics.
    pub tlb: TlbSystemStats,
    /// Cache and DRAM statistics.
    pub hier: HierarchyStats,
    /// Dynamic energy breakdown (Fig. 13).
    pub energy: EnergyBreakdown,
    /// Page-table node census (table size, replication, fallbacks).
    pub census: NodeCensus,
    /// PTP phase-detector transitions during measurement (0 when PTP is
    /// off or the scheme has no detector).
    pub phase_flips: u64,
    /// Per-depth PSC hit/miss statistics, widest prefix first (empty for
    /// schemes without a native PSC).
    pub pwc: Vec<(u32, HitMiss)>,
    /// Fault-injection counters for the whole run, warm-up included
    /// (all zero when no fault plan is installed).
    pub faults: FaultStats,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// This run's IPC relative to a baseline run (1.05 = +5 %).
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.ipc();
        if b == 0.0 {
            0.0
        } else {
            self.ipc() / b
        }
    }

    /// Cache dynamic energy relative to a baseline (Fig. 13).
    pub fn cache_energy_vs(&self, baseline: &SimReport) -> f64 {
        self.energy.cache_vs(&baseline.energy)
    }

    /// DRAM accesses relative to a baseline (Fig. 13).
    pub fn dram_energy_vs(&self, baseline: &SimReport) -> f64 {
        self.energy.dram_vs(&baseline.energy)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} {:<9} ipc={:.4} walks/1k={:.1} acc/walk={:.2} walk_lat={:.1}",
            self.workload,
            self.config,
            self.ipc(),
            1000.0 * self.tlb.walks as f64 / self.tlb.translations.max(1) as f64,
            self.walk.accesses_per_walk(),
            self.walk.latency_per_walk(),
        )
    }

    /// This run's statistics as named metrics (`walker.*`, `tlb.*`,
    /// `pwc.p{bits}.*`, `cache.*`, `dram.*`, `pt.*`, `ptp.phase_flips`).
    /// Counters add when the runner merges cells into the global
    /// registry; energy is reported as gauges (last merge wins).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.add("walker.walks", self.walk.walks)
            .add("walker.accesses", self.walk.accesses)
            .add("walker.latency", self.walk.latency)
            .add("walker.steps.l1", self.walk.step_hits.l1)
            .add("walker.steps.l2", self.walk.step_hits.l2)
            .add("walker.steps.l3", self.walk.step_hits.l3)
            .add("walker.steps.dram", self.walk.step_hits.dram)
            .add("ptp.phase_flips", self.phase_flips)
            .add("tlb.l1_4k.hit", self.tlb.l1_4k.hits)
            .add("tlb.l1_4k.miss", self.tlb.l1_4k.misses)
            .add("tlb.l1_2m.hit", self.tlb.l1_2m.hits)
            .add("tlb.l1_2m.miss", self.tlb.l1_2m.misses)
            .add("tlb.l1_1g.hit", self.tlb.l1_1g.hits)
            .add("tlb.l1_1g.miss", self.tlb.l1_1g.misses)
            .add("tlb.l2.hit", self.tlb.l2.hits)
            .add("tlb.l2.miss", self.tlb.l2.misses)
            .add("tlb.walks", self.tlb.walks)
            .add("tlb.translations", self.tlb.translations);
        for (bits, hm) in &self.pwc {
            m.add(&format!("pwc.p{bits}.hit"), hm.hits)
                .add(&format!("pwc.p{bits}.miss"), hm.misses);
        }
        for (name, c) in [
            ("l1", &self.hier.l1),
            ("l2", &self.hier.l2),
            ("l3", &self.hier.l3),
        ] {
            m.add(&format!("cache.{name}.data.hit"), c.data.hits)
                .add(&format!("cache.{name}.data.miss"), c.data.misses)
                .add(&format!("cache.{name}.pt.hit"), c.page_table.hits)
                .add(&format!("cache.{name}.pt.miss"), c.page_table.misses)
                .add(&format!("cache.{name}.fills"), c.fills)
                .add(
                    &format!("cache.{name}.pt_victims"),
                    c.pt_evictions_during_priority,
                );
        }
        m.add("dram.data", self.hier.dram.data_accesses)
            .add("dram.pt", self.hier.dram.page_table_accesses)
            .gauge("energy.l1_nj", self.energy.l1_nj)
            .gauge("energy.l2_nj", self.energy.l2_nj)
            .gauge("energy.l3_nj", self.energy.l3_nj)
            .gauge("energy.dram_nj", self.energy.dram_nj)
            .add("energy.dram_accesses", self.energy.dram_accesses);
        self.census.record_metrics(&mut m);
        if self.hier.numa.multi_node() {
            m.add("numa.local", self.hier.numa.local())
                .add("numa.remote", self.hier.numa.remote())
                .add("numa.hops", self.hier.numa.hops());
            for (i, n) in self.hier.numa.per_node[..self.hier.numa.nodes as usize]
                .iter()
                .enumerate()
            {
                m.add(&format!("numa.node{i}.local"), n.local)
                    .add(&format!("numa.node{i}.remote"), n.remote)
                    .add(&format!("numa.node{i}.hops"), n.hops);
            }
        }
        if self.faults.any() {
            m.add("faults.shootdowns", self.faults.shootdowns)
                .add("faults.mid_run_fallbacks", self.faults.mid_run_fallbacks)
                .add("faults.injected", self.faults.faults_injected);
        }
        m
    }

    /// The full report as a JSON object with a stable field order
    /// (schema `flatwalk-report-v1`).
    pub fn to_json(&self) -> Json {
        fn hitmiss(hm: HitMiss) -> Json {
            let mut o = Json::obj();
            o.push("hits", hm.hits).push("misses", hm.misses);
            o
        }
        fn cache(c: &CacheStats) -> Json {
            let mut o = Json::obj();
            o.push("data", hitmiss(c.data))
                .push("page_table", hitmiss(c.page_table))
                .push("fills", c.fills)
                .push("pt_victims", c.pt_evictions_during_priority);
            o
        }

        let mut walk = Json::obj();
        walk.push("walks", self.walk.walks)
            .push("accesses", self.walk.accesses)
            .push("latency", self.walk.latency)
            .push("accesses_per_walk", self.walk.accesses_per_walk())
            .push("latency_per_walk", self.walk.latency_per_walk())
            .push("latency_p50", self.walk.latency_p50())
            .push("latency_p90", self.walk.latency_p90())
            .push("latency_p99", self.walk.latency_p99())
            .push("latency_p999", self.walk.latency_p999())
            .push(
                // Sparse form: `[bound, count]` pairs for the non-empty
                // buckets only (the log-linear histogram has hundreds of
                // buckets, nearly all zero for any one scheme).
                "latency_histogram",
                Json::Array(
                    self.walk
                        .latency_histogram
                        .nonzero_buckets()
                        .map(|(bound, count)| {
                            Json::Array(vec![Json::from(bound), Json::from(count)])
                        })
                        .collect(),
                ),
            )
            .push("latency_overflow", self.walk.latency_histogram.overflow());
        let mut steps = Json::obj();
        steps
            .push("l1", self.walk.step_hits.l1)
            .push("l2", self.walk.step_hits.l2)
            .push("l3", self.walk.step_hits.l3)
            .push("dram", self.walk.step_hits.dram);
        walk.push("step_hits", steps);

        let mut tlb = Json::obj();
        tlb.push("l1_4k", hitmiss(self.tlb.l1_4k))
            .push("l1_2m", hitmiss(self.tlb.l1_2m))
            .push("l1_1g", hitmiss(self.tlb.l1_1g))
            .push("l2", hitmiss(self.tlb.l2))
            .push("walks", self.tlb.walks)
            .push("translations", self.tlb.translations);

        let pwc: Vec<Json> = self
            .pwc
            .iter()
            .map(|(bits, hm)| {
                let mut o = Json::obj();
                o.push("prefix_bits", u64::from(*bits))
                    .push("hits", hm.hits)
                    .push("misses", hm.misses);
                o
            })
            .collect();

        let mut hier = Json::obj();
        hier.push("l1", cache(&self.hier.l1))
            .push("l2", cache(&self.hier.l2))
            .push("l3", cache(&self.hier.l3));
        let mut dram = Json::obj();
        dram.push("data_accesses", self.hier.dram.data_accesses)
            .push("page_table_accesses", self.hier.dram.page_table_accesses);
        hier.push("dram", dram);
        // Only multi-node runs carry a `numa` object — single-node
        // reports stay byte-identical to the pre-NUMA schema.
        if self.hier.numa.multi_node() {
            let mut numa = Json::obj();
            numa.push("nodes", u64::from(self.hier.numa.nodes))
                .push("local", self.hier.numa.local())
                .push("remote", self.hier.numa.remote())
                .push("hops", self.hier.numa.hops());
            let per_node: Vec<Json> = self.hier.numa.per_node[..self.hier.numa.nodes as usize]
                .iter()
                .map(|n| {
                    let mut o = Json::obj();
                    o.push("local", n.local)
                        .push("remote", n.remote)
                        .push("hops", n.hops);
                    o
                })
                .collect();
            numa.push("per_node", Json::Array(per_node));
            hier.push("numa", numa);
        }

        let mut energy = Json::obj();
        energy
            .push("l1_nj", self.energy.l1_nj)
            .push("l2_nj", self.energy.l2_nj)
            .push("l3_nj", self.energy.l3_nj)
            .push("dram_nj", self.energy.dram_nj)
            .push("dram_accesses", self.energy.dram_accesses);

        let mut census = Json::obj();
        census
            .push("conventional_nodes", self.census.conventional_nodes)
            .push("flat2_nodes", self.census.flat2_nodes)
            .push("flat3_nodes", self.census.flat3_nodes)
            .push("replicated_entries", self.census.replicated_entries)
            .push("fallback_nodes", self.census.fallback_nodes)
            .push("table_bytes", self.census.table_bytes());

        let mut faults = Json::obj();
        faults
            .push("shootdowns", self.faults.shootdowns)
            .push("mid_run_fallbacks", self.faults.mid_run_fallbacks)
            .push("faults_injected", self.faults.faults_injected);

        let mut o = Json::obj();
        o.push("workload", self.workload.as_str())
            .push("config", self.config)
            .push("instructions", self.instructions)
            .push("cycles", self.cycles)
            .push("ipc", self.ipc())
            .push("phase_flips", self.phase_flips)
            .push("walk", walk)
            .push("tlb", tlb)
            .push("pwc", Json::Array(pwc))
            .push("hier", hier)
            .push("energy", energy)
            .push("census", census)
            .push("faults", faults)
            .push("metrics", self.metrics().to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(instructions: u64, cycles: u64) -> SimReport {
        SimReport {
            workload: "t".into(),
            config: "Base",
            instructions,
            cycles,
            walk: WalkerStats::default(),
            tlb: TlbSystemStats::default(),
            hier: HierarchyStats::default(),
            energy: EnergyBreakdown::default(),
            census: NodeCensus::default(),
            phase_flips: 0,
            pwc: Vec::new(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = report(1000, 2000);
        let fast = report(1000, 1000);
        assert!((base.ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert_eq!(report(10, 0).ipc(), 0.0);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report(10, 10).summary();
        assert!(s.contains("ipc="));
        assert!(s.contains("acc/walk="));
    }

    #[test]
    fn metrics_expose_named_counters() {
        let mut r = report(10, 20);
        r.tlb.walks = 7;
        r.walk.walks = 7;
        r.walk.step_hits.l1 = 5;
        r.pwc.push((27, HitMiss { hits: 3, misses: 1 }));
        let m = r.metrics();
        assert_eq!(m.counter_value("tlb.walks"), 7);
        assert_eq!(m.counter_value("walker.walks"), 7);
        assert_eq!(m.counter_value("walker.steps.l1"), 5);
        assert_eq!(m.counter_value("pwc.p27.hit"), 3);
        assert_eq!(m.counter_value("pwc.p27.miss"), 1);
    }

    #[test]
    fn json_round_trips_and_keeps_key_order() {
        let mut r = report(100, 200);
        r.pwc.push((27, HitMiss { hits: 3, misses: 1 }));
        r.walk.record(&flatwalk_mmu::WalkTiming {
            pa: flatwalk_types::PhysAddr::new(0x1000),
            size: flatwalk_types::PageSize::Size4K,
            accesses: 1,
            latency: 5,
        });
        let text = r.to_json().to_string();
        assert!(!text.contains("NaN") && !text.contains("Infinity"));
        let parsed = flatwalk_obs::json::parse(&text).unwrap();
        assert_eq!(parsed.to_string(), text, "parse→write is the identity");
        assert_eq!(parsed.get("instructions").unwrap().as_u64(), Some(100));
        let pwc = parsed.get("pwc").unwrap().as_array().unwrap();
        assert_eq!(pwc.len(), 1);
        assert_eq!(pwc[0].get("prefix_bits").unwrap().as_u64(), Some(27));
        let walk = parsed.get("walk").unwrap();
        let hist = walk.get("latency_histogram").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), 1, "sparse export: only non-empty buckets");
        let pair = hist[0].as_array().unwrap();
        assert_eq!(pair[0].as_u64(), Some(5), "latency 5 is recorded exactly");
        assert_eq!(pair[1].as_u64(), Some(1), "one recorded walk");
        assert_eq!(walk.get("latency_overflow").unwrap().as_u64(), Some(0));
        assert_eq!(walk.get("latency_p50").unwrap().as_u64(), Some(5));
        assert_eq!(walk.get("latency_p999").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn single_node_reports_carry_no_numa_keys() {
        // The identity guarantee's report half: a 1-node run must emit
        // exactly the pre-NUMA schema — no numa metrics, no numa JSON.
        let r = report(100, 200);
        assert!(!r.hier.numa.multi_node());
        let m = r.metrics();
        assert!(m.iter().all(|(k, _)| !k.contains("numa")));
        assert!(!r.to_json().to_string().contains("numa"));
    }

    #[test]
    fn multi_node_reports_expose_numa_counters_and_json() {
        let mut r = report(100, 200);
        r.hier.numa.nodes = 2;
        r.hier.numa.record(0, 0); // local on node 0
        r.hier.numa.record(1, 1); // remote, 1 hop, homed on node 1
        let m = r.metrics();
        assert_eq!(m.counter_value("numa.local"), 1);
        assert_eq!(m.counter_value("numa.remote"), 1);
        assert_eq!(m.counter_value("numa.hops"), 1);
        assert_eq!(m.counter_value("numa.node0.local"), 1);
        assert_eq!(m.counter_value("numa.node1.remote"), 1);
        let parsed = flatwalk_obs::json::parse(&r.to_json().to_string()).unwrap();
        let numa = parsed.get("hier").unwrap().get("numa").unwrap();
        assert_eq!(numa.get("nodes").unwrap().as_u64(), Some(2));
        assert_eq!(numa.get("local").unwrap().as_u64(), Some(1));
        assert_eq!(numa.get("remote").unwrap().as_u64(), Some(1));
        assert_eq!(numa.get("hops").unwrap().as_u64(), Some(1));
        assert_eq!(
            numa.get("per_node").unwrap().as_array().unwrap().len(),
            2,
            "per-node array is sized to the topology"
        );
    }
}
