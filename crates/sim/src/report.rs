//! Simulation result reporting.

use flatwalk_mem::{EnergyBreakdown, HierarchyStats};
use flatwalk_mmu::WalkerStats;
use flatwalk_pt::NodeCensus;
use flatwalk_tlb::TlbSystemStats;

/// The measured outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Benchmark name.
    pub workload: String,
    /// Configuration label ("Base", "FPT+PTP", …).
    pub config: &'static str,
    /// Instructions retired during measurement (memory ops + work).
    pub instructions: u64,
    /// Cycles accumulated during measurement.
    pub cycles: u64,
    /// Page-walk statistics ("memory requests per page walk" and walk
    /// latency — Fig. 1/10).
    pub walk: WalkerStats,
    /// TLB statistics.
    pub tlb: TlbSystemStats,
    /// Cache and DRAM statistics.
    pub hier: HierarchyStats,
    /// Dynamic energy breakdown (Fig. 13).
    pub energy: EnergyBreakdown,
    /// Page-table node census (table size, replication, fallbacks).
    pub census: NodeCensus,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// This run's IPC relative to a baseline run (1.05 = +5 %).
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.ipc();
        if b == 0.0 {
            0.0
        } else {
            self.ipc() / b
        }
    }

    /// Cache dynamic energy relative to a baseline (Fig. 13).
    pub fn cache_energy_vs(&self, baseline: &SimReport) -> f64 {
        self.energy.cache_vs(&baseline.energy)
    }

    /// DRAM accesses relative to a baseline (Fig. 13).
    pub fn dram_energy_vs(&self, baseline: &SimReport) -> f64 {
        self.energy.dram_vs(&baseline.energy)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} {:<9} ipc={:.4} walks/1k={:.1} acc/walk={:.2} walk_lat={:.1}",
            self.workload,
            self.config,
            self.ipc(),
            1000.0 * self.tlb.walks as f64 / self.tlb.translations.max(1) as f64,
            self.walk.accesses_per_walk(),
            self.walk.latency_per_walk(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(instructions: u64, cycles: u64) -> SimReport {
        SimReport {
            workload: "t".into(),
            config: "Base",
            instructions,
            cycles,
            walk: WalkerStats::default(),
            tlb: TlbSystemStats::default(),
            hier: HierarchyStats::default(),
            energy: EnergyBreakdown::default(),
            census: NodeCensus::default(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = report(1000, 2000);
        let fast = report(1000, 1000);
        assert!((base.ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert_eq!(report(10, 0).ipc(), 0.0);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report(10, 10).summary();
        assert!(s.contains("ipc="));
        assert!(s.contains("acc/walk="));
    }
}
