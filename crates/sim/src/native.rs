//! The single-core, native-execution simulation.

use std::sync::Arc;
use std::time::Instant;

use flatwalk_mem::{EnergyModel, MemoryHierarchy};
use flatwalk_mmu::{AddressSpace as MmuSpace, Mmu};
use flatwalk_os::{AddressSpaceSpec, FrozenSpace};
use flatwalk_types::OwnerId;
use flatwalk_workloads::{AccessStream, WorkloadSpec};

use crate::{engine, setup, SimOptions, SimReport, TranslationConfig};

/// A fully constructed native simulation: one core, one address space,
/// one workload.
///
/// # Examples
///
/// ```
/// use flatwalk_sim::{NativeSimulation, SimOptions, TranslationConfig};
/// use flatwalk_workloads::WorkloadSpec;
///
/// let opts = SimOptions::small_test();
/// let report = NativeSimulation::build(
///     WorkloadSpec::gups().scaled_mib(32),
///     TranslationConfig::flattened(),
///     &opts,
/// ).run();
/// assert!(report.ipc() > 0.0);
/// assert!(report.walk.accesses_per_walk() <= 2.0);
/// ```
#[derive(Debug)]
pub struct NativeSimulation {
    spec: WorkloadSpec,
    config: TranslationConfig,
    opts: Arc<SimOptions>,
    space: Arc<FrozenSpace>,
    mmu: Mmu,
    hier: MemoryHierarchy,
    stream: AccessStream,
}

impl NativeSimulation {
    /// Builds the address space (under the configured fragmentation
    /// scenario), the MMU, and the memory hierarchy.
    ///
    /// The space and the generated stream prefix come from the
    /// process-wide setup cache ([`crate::setup`]): grid cells that
    /// share a (layout, footprint, scenario, NF) key share one frozen
    /// snapshot instead of re-mapping the footprint per cell. Results
    /// are byte-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the address space cannot be built (physical memory in
    /// `opts` too small for the scaled footprint).
    pub fn build(spec: WorkloadSpec, config: TranslationConfig, opts: &SimOptions) -> Self {
        Self::build_shared(spec, config, Arc::new(opts.clone()))
    }

    /// Like [`NativeSimulation::build`], but shares the options by
    /// reference count instead of cloning the three nested config
    /// structs per cell (the runner's per-cell path).
    ///
    /// # Panics
    ///
    /// Panics if the address space cannot be built.
    pub fn build_shared(
        spec: WorkloadSpec,
        config: TranslationConfig,
        opts: Arc<SimOptions>,
    ) -> Self {
        let start = Instant::now();
        let spec = spec.scaled_down(opts.footprint_divisor);
        let space_spec = AddressSpaceSpec::new(config.layout.clone(), spec.footprint)
            .with_scenario(opts.scenario)
            .with_nf_threshold(config.nf_threshold);
        let space = setup::frozen_native_space(
            &space_spec,
            opts.phys_mem_bytes,
            opts.hierarchy.numa.signature(),
        );
        let ops = opts.warmup_ops + opts.measure_ops;
        let stream = AccessStream::replay(
            spec.clone(),
            space.spec().base_va,
            setup::stream_offsets(&spec, ops),
        );
        let sim = Self::assemble(spec, config, opts, space, stream);
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Builds around a pre-frozen space — the build-once/run-many path.
    /// The caller owns placement: the space must cover the workload's
    /// scaled footprint (the stream is windowed onto the space's base
    /// VA).
    ///
    /// # Panics
    ///
    /// Panics if the frozen space's footprint cannot hold the scaled
    /// workload.
    pub fn build_with_space(
        spec: WorkloadSpec,
        config: TranslationConfig,
        opts: Arc<SimOptions>,
        space: Arc<FrozenSpace>,
    ) -> Self {
        let start = Instant::now();
        let spec = spec.scaled_down(opts.footprint_divisor);
        assert!(
            space.spec().footprint >= spec.footprint,
            "frozen space ({} B) smaller than the workload footprint ({} B)",
            space.spec().footprint,
            spec.footprint
        );
        let ops = opts.warmup_ops + opts.measure_ops;
        let stream = AccessStream::replay(
            spec.clone(),
            space.spec().base_va,
            setup::stream_offsets(&spec, ops),
        );
        let sim = Self::assemble(spec, config, opts, space, stream);
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Builds a simulation around a pre-existing stream — typically a
    /// replayed trace (`flatwalk_workloads::trace::load`). The stream's
    /// spec provides the footprint and timing parameters; no footprint
    /// scaling is applied (traces run at their recorded scale), and the
    /// stream is rebased onto the (possibly cached) address space.
    ///
    /// # Panics
    ///
    /// Panics if the address space cannot be built.
    pub fn build_with_stream(
        mut stream: AccessStream,
        config: TranslationConfig,
        opts: &SimOptions,
    ) -> Self {
        let start = Instant::now();
        let spec = stream.spec().clone();
        let space_spec = AddressSpaceSpec::new(config.layout.clone(), spec.footprint)
            .with_scenario(opts.scenario)
            .with_nf_threshold(config.nf_threshold);
        let space = setup::frozen_native_space(
            &space_spec,
            opts.phys_mem_bytes,
            opts.hierarchy.numa.signature(),
        );
        stream.rebase(space.spec().base_va);
        let sim = Self::assemble(spec, config, Arc::new(opts.clone()), space, stream);
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Assembles the per-cell mutable state (MMU, hierarchy) around the
    /// shared immutable artifacts.
    fn assemble(
        spec: WorkloadSpec,
        config: TranslationConfig,
        opts: Arc<SimOptions>,
        space: Arc<FrozenSpace>,
        stream: AccessStream,
    ) -> Self {
        let pwc = opts.pwc.for_layout(&config.layout);
        let mut mmu = Mmu::native(opts.tlb.clone(), pwc, config.ptp);
        mmu.set_phase_detector(flatwalk_tlb::PhaseDetector::new(
            opts.phase_window,
            opts.phase_threshold,
        ));
        let hier = MemoryHierarchy::new(opts.hierarchy.clone().with_priority_prob(opts.ptp_bias));
        NativeSimulation {
            spec,
            config,
            opts,
            space,
            mmu,
            hier,
            stream,
        }
    }

    /// Runs warm-up then measurement; returns the report.
    ///
    /// # Panics
    ///
    /// Panics on an untranslatable access — use
    /// [`NativeSimulation::try_run`] to get a structured
    /// [`SimError`](crate::SimError) instead.
    pub fn run(self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs warm-up then measurement; returns the report, or a
    /// [`SimError`](crate::SimError) identifying the exact access that
    /// failed to translate.
    pub fn try_run(self) -> Result<SimReport, crate::SimError> {
        let start = Instant::now();
        let NativeSimulation {
            spec,
            config,
            opts,
            space,
            mut mmu,
            mut hier,
            mut stream,
        } = self;
        if flatwalk_obs::trace::any_enabled() {
            flatwalk_obs::trace::set_context(&format!("{}/{}", spec.name, config.label));
        }

        // Mid-run mutation schedule: a pure function of the fault plan
        // and stable cell identity, so it is identical at every thread
        // count. Fault counters span the whole run (warm-up included).
        let total_ops = opts.warmup_ops + opts.measure_ops;
        let fault_salt = flatwalk_faults::mix_str(spec.name)
            ^ flatwalk_faults::mix_str(config.label)
            ^ flatwalk_types::rng::splitmix_mix(spec.footprint);
        let events = flatwalk_faults::active()
            .map(|p| p.mutation_events(fault_salt, total_ops))
            .unwrap_or_default();

        let aspace = MmuSpace::native(space.store(), space.table());
        let mut backend = engine::MmuBackend::new(&mut mmu, aspace);
        let run = engine::EngineRun {
            scheme: config.label,
            workload: spec.name,
            core: None,
            work_per_access: spec.work_per_access,
            data_exposure: spec.data_exposure,
            l1_latency: opts.hierarchy.l1.latency,
            warmup_ops: opts.warmup_ops,
            measure_ops: opts.measure_ops,
            context_switch_interval: opts.context_switch_interval,
            events: &events,
        };
        let totals =
            engine::run_single(&mut backend, &mut hier, &mut stream, OwnerId::SINGLE, &run)?;

        let report = SimReport {
            workload: spec.name.to_string(),
            config: config.label,
            instructions: totals.instructions,
            cycles: totals.cycles.round() as u64,
            walk: mmu.stats().walker,
            tlb: mmu.stats().tlb,
            hier: hier.stats(),
            energy: hier.energy(&EnergyModel::default()),
            census: *space.census(),
            phase_flips: mmu.phase_flips(),
            pwc: mmu.pwc_stats().unwrap_or_default(),
            faults: totals.faults,
        };
        setup::record_run_time(start.elapsed());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_os::FragmentationScenario;

    fn run(spec: WorkloadSpec, cfg: TranslationConfig) -> SimReport {
        let opts = SimOptions::small_test();
        NativeSimulation::build(spec, cfg, &opts).run()
    }

    #[test]
    fn flattening_reduces_walk_accesses() {
        let spec = WorkloadSpec::gups().scaled_mib(128);
        let base = run(spec.clone(), TranslationConfig::baseline());
        let flat = run(spec, TranslationConfig::flattened());
        assert!(
            base.walk.accesses_per_walk() > 1.1,
            "baseline gups should need >1 access/walk (got {})",
            base.walk.accesses_per_walk()
        );
        assert!(
            flat.walk.accesses_per_walk() <= 1.05,
            "flattened walks must be ~single access (got {})",
            flat.walk.accesses_per_walk()
        );
        assert!(flat.speedup_vs(&base) > 1.0, "flattening should help gups");
    }

    #[test]
    fn ptp_reduces_walk_latency_for_tlb_hostile_workloads() {
        let spec = WorkloadSpec::gups().scaled_mib(256);
        let base = run(spec.clone(), TranslationConfig::baseline());
        let ptp = run(spec, TranslationConfig::prioritized());
        assert!(
            ptp.walk.latency_per_walk() < base.walk.latency_per_walk(),
            "PTP should cut walk latency ({} vs {})",
            ptp.walk.latency_per_walk(),
            base.walk.latency_per_walk()
        );
        assert!(ptp.speedup_vs(&base) > 1.0);
    }

    #[test]
    fn explicit_single_node_topology_is_the_identity() {
        // The 1-node NUMA topology must be invisible end to end: a run
        // with an explicit single() topology produces the exact same
        // report (JSON and all) as a run with the default options.
        let spec = WorkloadSpec::gups().scaled_mib(128);
        let default_opts = SimOptions::small_test();
        let mut explicit_opts = SimOptions::small_test();
        explicit_opts.hierarchy = explicit_opts
            .hierarchy
            .with_numa(flatwalk_mem::NumaTopology::single());
        let a =
            NativeSimulation::build(spec.clone(), TranslationConfig::flattened(), &default_opts)
                .run();
        let b = NativeSimulation::build(spec, TranslationConfig::flattened(), &explicit_opts).run();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert!(!a.to_json().to_string().contains("numa"));
    }

    #[test]
    fn multi_node_topology_changes_timing_and_reports_placement() {
        let spec = WorkloadSpec::gups().scaled_mib(128);
        let single = SimOptions::small_test();
        let mut two = SimOptions::small_test();
        two.hierarchy = two
            .hierarchy
            .with_numa(flatwalk_mem::NumaTopology::nodes(2));
        let a = NativeSimulation::build(spec.clone(), TranslationConfig::baseline(), &single).run();
        let b = NativeSimulation::build(spec, TranslationConfig::baseline(), &two).run();
        assert!(b.hier.numa.multi_node());
        assert!(
            b.hier.numa.local() + b.hier.numa.remote() > 0,
            "DRAM traffic is attributed to nodes"
        );
        assert!(
            b.hier.numa.remote() > 0,
            "interleaved 2-node memory serves remote lines"
        );
        assert!(
            b.cycles > a.cycles,
            "remote hops cost cycles ({} vs {})",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn dc_is_translation_friendly() {
        let spec = WorkloadSpec::dc().scaled_mib(128);
        let r = run(spec, TranslationConfig::baseline());
        assert!(
            r.tlb.walk_rate() < 0.05,
            "dc should rarely walk (rate {})",
            r.tlb.walk_rate()
        );
    }

    #[test]
    fn large_pages_reduce_walks() {
        let spec = WorkloadSpec::gups().scaled_mib(128);
        let opts = SimOptions::small_test();
        let r0 = NativeSimulation::build(
            spec.clone(),
            TranslationConfig::baseline(),
            &opts.clone().with_scenario(FragmentationScenario::NONE),
        )
        .run();
        let r100 = NativeSimulation::build(
            spec,
            TranslationConfig::baseline(),
            &opts.with_scenario(FragmentationScenario::FULL),
        )
        .run();
        assert!(
            r100.tlb.walks < r0.tlb.walks / 2,
            "2 MB pages must slash walk counts ({} vs {})",
            r100.tlb.walks,
            r0.tlb.walks
        );
        assert!(r100.speedup_vs(&r0) > 1.0);
    }

    #[test]
    fn deterministic_reports() {
        let spec = WorkloadSpec::mcf().scaled_mib(64);
        let a = run(spec.clone(), TranslationConfig::flattened_prioritized());
        let b = run(spec, TranslationConfig::flattened_prioritized());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.tlb.walks, b.tlb.walks);
    }
}
