//! The generic walk engine: one batched two-phase run loop shared by
//! every driver.
//!
//! Before this module existed, the native, virtualized, multicore, and
//! comparison-scheme drivers each carried their own copy of the
//! warm-up/measure loop — four slightly different interleavings of
//! context switches, fault events, TLB/walker dispatch, and the timing
//! proxy. The engine factors that loop out once and parameterizes it
//! over an [`EngineBackend`]: the only thing a driver supplies is how a
//! *span* of consecutive virtual addresses is translated and accessed.
//!
//! The backend is a statically-dispatched type parameter, so each
//! driver's loop monomorphizes into straight-line code with no per-op
//! (let alone per-walk-step) branching on the translation scheme:
//!
//! * [`MmuBackend`] — native and virtualized runs; spans feed
//!   [`Mmu::access_batch`], whose kernel hoists the TLB/PTP/trace
//!   dispatch to once per span and drives every miss through the
//!   monomorphized typed-level walkers (`flatwalk_pt::typed`).
//! * `flatwalk-baselines`' scheme backend — comparison schemes (ECH,
//!   ASAP, POM_TLB, CSALT) implement the same trait, so Fig. 9/13 runs
//!   share this exact loop.
//!
//! Two entry points cover the paper's topologies:
//!
//! * [`run_single`] — one core, spans up to [`BATCH`] ops, clamped so
//!   no span crosses a context-switch boundary or a scheduled fault
//!   event. Per-op state transitions are exactly those of a
//!   one-call-per-access loop, so every report byte is unchanged.
//! * [`run_multicore`] — round-robin over cores, one op per core per
//!   round (spans of one): the shared-LLC interleaving *is* the model,
//!   so batching across rounds would change results.
//!
//! Debug builds additionally cross-check early spans against an
//! unbatched per-op replay on cloned state ([`EngineBackend::
//! unbatched_reference`]), mirroring the page-table layer's
//! PSC-short-circuit `debug_assert!`s.

use flatwalk_faults::{FaultStats, MidRunFault};
use flatwalk_mem::MemoryHierarchy;
use flatwalk_mmu::{AccessTiming, AddressSpace, Mmu};
use flatwalk_pt::WalkError;
use flatwalk_types::{OwnerId, VirtAddr};
use flatwalk_workloads::AccessStream;

use crate::SimError;

/// Maximum ops per engine span (single-core runs). Spans are clamped
/// to context-switch boundaries and scheduled fault events, so this is
/// an upper bound, not a granularity guarantee.
pub const BATCH: u64 = 256;

/// How many leading spans of each run the debug build replays per-op
/// against the batched result.
#[cfg(debug_assertions)]
const CROSS_CHECK_SPANS: u32 = 4;

/// How one driver translates and accesses a span of virtual addresses.
///
/// The engine owns the loop (phases, context switches, fault events,
/// the timing proxy); a backend owns the translation machinery. The
/// contract of [`access_span`](EngineBackend::access_span) is strict:
/// it must behave exactly as if each VA were translated and accessed by
/// one call in order — the engine's spans are an optimization, never a
/// semantic boundary.
pub trait EngineBackend {
    /// Translates and performs a data access for each VA in order,
    /// replacing `out` with one timing per VA. On an untranslatable
    /// access, returns its index within `vas` and the walk error;
    /// accesses before the failing one have already taken effect.
    fn access_span(
        &mut self,
        hier: &mut MemoryHierarchy,
        vas: &[VirtAddr],
        owner: OwnerId,
        out: &mut Vec<AccessTiming>,
    ) -> Result<(), (usize, WalkError)>;

    /// Reacts to a context switch (flush per-process translation state).
    fn context_switch(&mut self);

    /// Models a TLB shootdown after a live page-table mutation; returns
    /// the number of TLB entries invalidated. Backends without mutation
    /// events (the comparison schemes) never receive this call.
    fn shootdown(&mut self) -> u64 {
        0
    }

    /// Clears the backend's statistics at the warm-up/measure boundary
    /// (contents stay warm).
    fn reset_stats(&mut self);

    /// Debug-only reference replay: translate and access `vas` one op
    /// at a time on *cloned* state, without perturbing the live
    /// structures, returning the per-op timings — or `None` if the
    /// backend has no per-op reference path (or the replay errors; the
    /// batched span will surface the same error itself). The engine
    /// `debug_assert!`s the batched span against this on early spans.
    fn unbatched_reference(
        &self,
        _hier: &MemoryHierarchy,
        _vas: &[VirtAddr],
        _owner: OwnerId,
    ) -> Option<Vec<AccessTiming>> {
        None
    }
}

/// The MMU-driven backend: native and virtualized (nested) address
/// spaces, dispatched statically by [`Mmu::access_batch`]'s span
/// kernel.
#[derive(Debug)]
pub struct MmuBackend<'a> {
    mmu: &'a mut Mmu,
    aspace: AddressSpace<'a>,
}

impl<'a> MmuBackend<'a> {
    /// Wraps an MMU and the address space it translates against.
    pub fn new(mmu: &'a mut Mmu, aspace: AddressSpace<'a>) -> Self {
        MmuBackend { mmu, aspace }
    }
}

impl EngineBackend for MmuBackend<'_> {
    fn access_span(
        &mut self,
        hier: &mut MemoryHierarchy,
        vas: &[VirtAddr],
        owner: OwnerId,
        out: &mut Vec<AccessTiming>,
    ) -> Result<(), (usize, WalkError)> {
        self.mmu.access_batch(&self.aspace, hier, vas, owner, out)
    }

    fn context_switch(&mut self) {
        self.mmu.context_switch();
    }

    fn shootdown(&mut self) -> u64 {
        self.mmu.shootdown()
    }

    fn reset_stats(&mut self) {
        self.mmu.reset_stats();
    }

    fn unbatched_reference(
        &self,
        hier: &MemoryHierarchy,
        vas: &[VirtAddr],
        owner: OwnerId,
    ) -> Option<Vec<AccessTiming>> {
        // The replay re-runs real walks on cloned state; silence trace
        // emission so per-walk record counts still match the live run.
        let _quiet = flatwalk_obs::trace::suppress();
        let mut mmu = self.mmu.clone();
        let mut hier = hier.deep_clone();
        let mut out = Vec::with_capacity(vas.len());
        for &va in vas {
            out.push(mmu.access(&self.aspace, &mut hier, va, owner).ok()?);
        }
        Some(out)
    }
}

/// Per-run parameters of the engine loop: identity for error reports,
/// the workload's timing-proxy constants, and the op schedule.
#[derive(Debug, Clone, Copy)]
pub struct EngineRun<'a> {
    /// Configuration/scheme label (for [`SimError`] and traces).
    pub scheme: &'static str,
    /// Workload name (for [`SimError`]).
    pub workload: &'a str,
    /// Core index for multicore error reports (`None` single-core).
    pub core: Option<usize>,
    /// Non-memory instructions retired per access (CPI 1).
    pub work_per_access: u64,
    /// Fraction of data-stall cycles exposed (the workload's MLP).
    pub data_exposure: f64,
    /// L1 data-cache latency (pipelined away in the proxy).
    pub l1_latency: u64,
    /// Warm-up operations (phase 0, statistics discarded).
    pub warmup_ops: u64,
    /// Measured operations (phase 1).
    pub measure_ops: u64,
    /// Context-switch every `n` ops within a phase, if set.
    pub context_switch_interval: Option<u64>,
    /// Scheduled mid-run mutation events, ascending by stream position.
    pub events: &'a [(u64, MidRunFault)],
}

/// What the engine loop accumulated: the drivers combine this with
/// their own structures (MMU stats, hierarchy stats, census) into a
/// [`SimReport`](crate::SimReport).
#[derive(Debug, Clone, Default)]
pub struct EngineTotals {
    /// Instructions retired during the measured phase.
    pub instructions: u64,
    /// Cycles of the measured phase (f64 accumulation order is part of
    /// the byte-identity contract; round at report time).
    pub cycles: f64,
    /// Mutation events observed across the whole run (warm-up
    /// included).
    pub faults: FaultStats,
}

impl EngineTotals {
    /// Accumulates one access: the timing proxy shared by every driver.
    /// Non-memory work runs at CPI 1; a TLB hit's latency is pipelined
    /// away; walk latency is fully exposed (serial pointer chase); data
    /// latency beyond an L1 hit is exposed according to the workload's
    /// MLP profile.
    #[inline]
    fn note_access(&mut self, t: &AccessTiming, work: u64, exposure: f64, l1_latency: u64) {
        self.instructions += work + 1;
        let translation_stall = t.translation_latency.saturating_sub(1);
        let data_stall = t.data_latency.saturating_sub(l1_latency) as f64 * exposure;
        self.cycles += work as f64 + translation_stall as f64 + data_stall;
    }

    /// Accumulates one shootdown-causing mutation event.
    fn note_event(&mut self, backend_flushed: u64, kind: MidRunFault, stream_pos: u64) {
        let cost = flatwalk_faults::shootdown_cost(backend_flushed);
        self.cycles += cost as f64;
        self.faults.note(kind);
        flatwalk_obs::trace::emit_fault(kind.name(), stream_pos, backend_flushed, cost);
    }
}

/// Builds the engine's [`SimError`] for a failed access.
fn sim_error(run: &EngineRun<'_>, va: VirtAddr, stream_pos: u64, source: WalkError) -> SimError {
    SimError {
        scheme: run.scheme,
        workload: run.workload.to_string(),
        core: run.core,
        va,
        stream_pos,
        source,
        detail: None,
    }
}

/// Runs the two-phase (warm-up, measure) single-core loop over batched
/// spans.
///
/// Context switches and fault mutations only ever fire at op
/// boundaries computed up front, so every inter-event span feeds the
/// backend's batched kernel in one call — per-op dispatch (backend
/// match, event probing, stream source match) is hoisted to once per
/// span. The per-op state transitions and the f64 accumulation order
/// are exactly those of the one-call-per-access loop, so every report
/// byte is unchanged.
pub fn run_single<B: EngineBackend>(
    backend: &mut B,
    hier: &mut MemoryHierarchy,
    stream: &mut AccessStream,
    owner: OwnerId,
    run: &EngineRun<'_>,
) -> Result<EngineTotals, SimError> {
    let mut totals = EngineTotals::default();
    let mut next_event = 0usize;
    let mut stream_pos = 0u64;
    let mut va_buf: Vec<VirtAddr> = Vec::with_capacity(BATCH as usize);
    let mut t_buf: Vec<AccessTiming> = Vec::with_capacity(BATCH as usize);
    #[cfg(debug_assertions)]
    let mut checked_spans = 0u32;

    for phase in 0..2u32 {
        let ops = if phase == 0 {
            run.warmup_ops
        } else {
            run.measure_ops
        };
        let _phase_span = flatwalk_obs::span::enter(if phase == 0 {
            "engine.warmup"
        } else {
            "engine.measure"
        });
        if phase == 1 {
            backend.reset_stats();
            hier.reset_stats();
            totals.instructions = 0;
            totals.cycles = 0.0;
        }
        let mut op = 0u64;
        while op < ops {
            // Between-spans interrupt poll: deadline/cancel trips land
            // here, never inside a span, so completed spans keep their
            // byte-identical effects.
            if let Err(reason) = crate::runner::span_checkpoint() {
                let va = va_buf.first().copied().unwrap_or(VirtAddr::new(0));
                let mut err = sim_error(run, va, stream_pos, WalkError::Cancelled);
                err.detail = Some(reason);
                return Err(err);
            }
            if let Some(n) = run.context_switch_interval {
                if op > 0 && op.is_multiple_of(n) {
                    backend.context_switch();
                }
            }
            while next_event < run.events.len() && run.events[next_event].0 == stream_pos {
                let kind = run.events[next_event].1;
                next_event += 1;
                totals.note_event(backend.shootdown(), kind, stream_pos);
            }
            // Longest span that cannot cross a context-switch boundary
            // or a scheduled mutation event.
            let mut span = (ops - op).min(BATCH);
            if let Some(n) = run.context_switch_interval {
                span = span.min(n - op % n);
            }
            if next_event < run.events.len() {
                span = span.min(run.events[next_event].0 - stream_pos);
            }
            // Covers stream generation, the batched kernel call, and
            // the timing-proxy accumulation for this span of ops.
            let _batch_span = flatwalk_obs::span::enter("engine.batch");
            stream.fill_vas(&mut va_buf, span as usize);
            #[cfg(debug_assertions)]
            let reference = (checked_spans < CROSS_CHECK_SPANS)
                .then(|| backend.unbatched_reference(hier, &va_buf, owner))
                .flatten();
            backend
                .access_span(hier, &va_buf, owner, &mut t_buf)
                .map_err(|(i, e)| sim_error(run, va_buf[i], stream_pos + i as u64, e))?;
            #[cfg(debug_assertions)]
            if let Some(reference) = reference {
                debug_assert_eq!(
                    reference, t_buf,
                    "batched span must match the per-op reference replay"
                );
                checked_spans += 1;
            }
            for t in &t_buf {
                totals.note_access(t, run.work_per_access, run.data_exposure, run.l1_latency);
            }
            stream_pos += span;
            op += span;
        }
    }
    Ok(totals)
}

/// One core of a [`run_multicore`] round-robin: its backend, private
/// cache levels (over the shared LLC), access stream, per-core run
/// parameters, and fault-event schedule.
pub struct EngineCore<'a, B: EngineBackend> {
    /// The core's translation backend.
    pub backend: B,
    /// The core's hierarchy view (private L1/L2, shared L3/DRAM).
    pub hier: &'a mut MemoryHierarchy,
    /// The core's access stream.
    pub stream: &'a mut AccessStream,
    /// Workload name (for [`SimError`]).
    pub workload: &'a str,
    /// Non-memory instructions retired per access.
    pub work_per_access: u64,
    /// Fraction of data-stall cycles exposed.
    pub data_exposure: f64,
    /// This core's scheduled mutation events, ascending by position.
    pub events: Vec<(u64, MidRunFault)>,
}

/// Runs the two-phase multicore loop: one access per core per round,
/// so the cores' interleaving through the shared LLC — the thing the
/// multicore experiments measure — is identical to the historical
/// per-op loop. Spans are single-op but still flow through the same
/// batched span kernel as [`run_single`] (per-span trace-gate hoisting
/// and static dispatch apply; there is simply one op per span).
///
/// Returns per-core totals in core order, or the first failing access
/// (with its core index).
pub fn run_multicore<B: EngineBackend>(
    cores: &mut [EngineCore<'_, B>],
    scheme: &'static str,
    l1_latency: u64,
    warmup_ops: u64,
    measure_ops: u64,
) -> Result<Vec<EngineTotals>, SimError> {
    let mut totals = vec![EngineTotals::default(); cores.len()];
    let mut next_event = vec![0usize; cores.len()];
    let mut stream_pos = 0u64;
    let mut va_buf: Vec<VirtAddr> = Vec::with_capacity(1);
    let mut t_buf: Vec<AccessTiming> = Vec::with_capacity(1);
    #[cfg(debug_assertions)]
    let mut checked_rounds = 0u32;

    for phase in 0..2u32 {
        let ops = if phase == 0 { warmup_ops } else { measure_ops };
        // Phase spans only: a per-round span at one op per core per
        // round would dominate the measurement it attributes.
        let _phase_span = flatwalk_obs::span::enter(if phase == 0 {
            "engine.warmup"
        } else {
            "engine.measure"
        });
        if phase == 1 {
            for (core, t) in cores.iter_mut().zip(&mut totals) {
                core.backend.reset_stats();
                core.hier.reset_stats();
                t.instructions = 0;
                t.cycles = 0.0;
            }
        }
        for _ in 0..ops {
            // One interrupt poll per round (never inside one): the
            // cores' shared-LLC interleaving is untouched on the
            // non-interrupted path.
            if let Err(reason) = crate::runner::span_checkpoint() {
                return Err(SimError {
                    scheme,
                    workload: cores.first().map(|c| c.workload).unwrap_or("").to_string(),
                    core: None,
                    va: va_buf.first().copied().unwrap_or(VirtAddr::new(0)),
                    stream_pos,
                    source: WalkError::Cancelled,
                    detail: Some(reason),
                });
            }
            for (i, core) in cores.iter_mut().enumerate() {
                while next_event[i] < core.events.len()
                    && core.events[next_event[i]].0 == stream_pos
                {
                    let kind = core.events[next_event[i]].1;
                    next_event[i] += 1;
                    totals[i].note_event(core.backend.shootdown(), kind, stream_pos);
                }
                va_buf.clear();
                va_buf.push(core.stream.next_va());
                let owner = OwnerId(i as u8);
                #[cfg(debug_assertions)]
                let reference = (checked_rounds < CROSS_CHECK_SPANS)
                    .then(|| core.backend.unbatched_reference(core.hier, &va_buf, owner))
                    .flatten();
                core.backend
                    .access_span(core.hier, &va_buf, owner, &mut t_buf)
                    .map_err(|(_, e)| SimError {
                        scheme,
                        workload: core.workload.to_string(),
                        core: Some(i),
                        va: va_buf[0],
                        stream_pos,
                        source: e,
                        detail: None,
                    })?;
                #[cfg(debug_assertions)]
                if let Some(reference) = reference {
                    debug_assert_eq!(
                        reference, t_buf,
                        "multicore span must match the per-op reference replay"
                    );
                }
                totals[i].note_access(
                    &t_buf[0],
                    core.work_per_access,
                    core.data_exposure,
                    l1_latency,
                );
            }
            stream_pos += 1;
            #[cfg(debug_assertions)]
            {
                checked_rounds += 1;
            }
        }
    }
    Ok(totals)
}

/// The global metrics registry's walk-step counters as
/// `(steps served by a cache, total steps)` — engine-level accounting
/// every driver feeds identically through
/// [`SimReport::metrics`](crate::SimReport::metrics), regardless of
/// backend.
pub fn walk_step_counters() -> (u64, u64) {
    let m = flatwalk_obs::metrics::global_snapshot();
    let hits = m.counter_value("walker.steps.l1")
        + m.counter_value("walker.steps.l2")
        + m.counter_value("walker.steps.l3");
    (hits, hits + m.counter_value("walker.steps.dram"))
}
