//! Structured simulation failures.
//!
//! A bad translation used to `panic!` inside the drivers' run loops,
//! killing the whole experiment grid. The drivers now surface it as a
//! [`SimError`] carrying everything needed to reproduce the access; the
//! runner turns it into a `CellOutcome::Failed` record while the rest
//! of the grid completes.

use flatwalk_pt::WalkError;
use flatwalk_types::VirtAddr;

/// A simulation run that could not complete: one access failed to
/// translate. Identifies the exact access — scheme, workload, core,
/// stream position, virtual address — plus the underlying walk error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// The translation scheme / configuration label that was running.
    pub scheme: &'static str,
    /// The workload whose access stream hit the error.
    pub workload: String,
    /// The core the access ran on (`None` for single-core drivers).
    pub core: Option<usize>,
    /// The virtual address that failed to translate.
    pub va: VirtAddr,
    /// Zero-based position in the access stream (warm-up included).
    pub stream_pos: u64,
    /// Why the walk failed.
    pub source: WalkError,
    /// Extra context for interrupts (`WalkError::Cancelled`): whether
    /// the owner's cancel flag or the cell deadline stopped the run.
    pub detail: Option<&'static str>,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {}: access #{} to {} failed: {}",
            self.scheme, self.workload, self.stream_pos, self.va, self.source
        )?;
        if let Some(detail) = self.detail {
            write!(f, " ({detail})")?;
        }
        if let Some(core) = self.core {
            write!(f, " (core {core})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_types::Level;

    #[test]
    fn display_names_the_access() {
        let e = SimError {
            scheme: "FPT",
            workload: "gups".to_string(),
            core: Some(2),
            va: VirtAddr::new(0x1000),
            stream_pos: 41,
            source: WalkError::NotMapped { at: Level::L4 },
            detail: None,
        };
        let text = e.to_string();
        assert!(text.contains("FPT"), "{text}");
        assert!(text.contains("gups"), "{text}");
        assert!(text.contains("#41"), "{text}");
        assert!(text.contains("core 2"), "{text}");
    }
}
