//! The virtualized (2-D page walk) simulation (paper §4, Fig. 12).

use std::sync::Arc;
use std::time::Instant;

use flatwalk_mem::{EnergyModel, MemoryHierarchy};
use flatwalk_mmu::{AddressSpace as MmuSpace, Mmu, NestedTables};
use flatwalk_os::{AddressSpaceSpec, FragmentationScenario, FrozenVirtSpace};
use flatwalk_pt::Layout;
use flatwalk_types::OwnerId;
use flatwalk_workloads::{AccessStream, WorkloadSpec};

use crate::{engine, setup, SimOptions, SimReport, TranslationConfig};

/// Which tables are flattened in a virtualized run — the Fig. 12
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtConfig {
    /// Label ("Base-2D", "HF", "GF", "GF+HF", optionally "+PTP").
    pub label: &'static str,
    /// Flatten the guest page table.
    pub guest_flat: bool,
    /// Flatten the host page table.
    pub host_flat: bool,
    /// Enable page-table prioritization.
    pub ptp: bool,
}

impl VirtConfig {
    /// The eight Fig. 12 configurations in presentation order.
    pub fn fig12_set() -> Vec<VirtConfig> {
        vec![
            VirtConfig {
                label: "Base-2D",
                guest_flat: false,
                host_flat: false,
                ptp: false,
            },
            VirtConfig {
                label: "HF",
                guest_flat: false,
                host_flat: true,
                ptp: false,
            },
            VirtConfig {
                label: "GF",
                guest_flat: true,
                host_flat: false,
                ptp: false,
            },
            VirtConfig {
                label: "GF+HF",
                guest_flat: true,
                host_flat: true,
                ptp: false,
            },
            VirtConfig {
                label: "Base+PTP",
                guest_flat: false,
                host_flat: false,
                ptp: true,
            },
            VirtConfig {
                label: "HF+PTP",
                guest_flat: false,
                host_flat: true,
                ptp: true,
            },
            VirtConfig {
                label: "GF+PTP",
                guest_flat: true,
                host_flat: false,
                ptp: true,
            },
            VirtConfig {
                label: "GF+HF+PTP",
                guest_flat: true,
                host_flat: true,
                ptp: true,
            },
        ]
    }

    /// The guest page-table layout this configuration implies.
    pub fn guest_layout(&self) -> Layout {
        if self.guest_flat {
            Layout::flat_l4l3_l2l1()
        } else {
            Layout::conventional4()
        }
    }

    /// The host page-table layout this configuration implies.
    pub fn host_layout(&self) -> Layout {
        if self.host_flat {
            Layout::flat_l4l3_l2l1()
        } else {
            Layout::conventional4()
        }
    }

    /// The equivalent single-dimension translation config (for report
    /// labelling).
    pub fn as_translation_config(&self) -> TranslationConfig {
        let mut t = if self.guest_flat {
            TranslationConfig::flattened()
        } else {
            TranslationConfig::baseline()
        };
        t.ptp = self.ptp;
        t.label = self.label;
        t
    }
}

/// A fully constructed virtualized simulation.
///
/// # Examples
///
/// ```
/// use flatwalk_sim::{SimOptions, VirtConfig, VirtualizedSimulation};
/// use flatwalk_workloads::WorkloadSpec;
///
/// let opts = SimOptions::small_test();
/// let cfg = VirtConfig { label: "GF+HF", guest_flat: true, host_flat: true, ptp: false };
/// let report = VirtualizedSimulation::build(
///     WorkloadSpec::gups().scaled_mib(32),
///     cfg,
///     &opts,
/// ).run();
/// assert!(report.walk.accesses_per_walk() < 8.0);
/// ```
#[derive(Debug)]
pub struct VirtualizedSimulation {
    spec: WorkloadSpec,
    config: VirtConfig,
    opts: Arc<SimOptions>,
    vspace: Arc<FrozenVirtSpace>,
    mmu: Mmu,
    hier: MemoryHierarchy,
    stream: AccessStream,
}

impl VirtualizedSimulation {
    /// Builds guest + host tables and the nested MMU.
    ///
    /// The guest's data pages follow `opts.scenario`; the host backs
    /// guest-physical memory with the same scenario's large-page mix
    /// (hypervisors map guest memory with 2 MB pages where available,
    /// §4.1).
    ///
    /// # Panics
    ///
    /// Panics if the spaces cannot be built within `opts.phys_mem_bytes`.
    pub fn build(spec: WorkloadSpec, config: VirtConfig, opts: &SimOptions) -> Self {
        Self::build_custom(
            spec,
            config,
            config.guest_layout(),
            config.host_layout(),
            opts,
        )
    }

    /// Builds around a pre-frozen virtualized space — the
    /// build-once/run-many path. The `config` still controls PTP and
    /// the report label; the layouts are whatever the frozen space was
    /// built with.
    ///
    /// # Panics
    ///
    /// Panics if the frozen guest space cannot hold the scaled
    /// workload footprint.
    pub fn build_with_space(
        spec: WorkloadSpec,
        config: VirtConfig,
        opts: Arc<SimOptions>,
        vspace: Arc<FrozenVirtSpace>,
    ) -> Self {
        let start = Instant::now();
        let spec = spec.scaled_down(opts.footprint_divisor);
        assert!(
            vspace.guest().spec().footprint >= spec.footprint,
            "frozen guest space ({} B) smaller than the workload footprint ({} B)",
            vspace.guest().spec().footprint,
            spec.footprint
        );
        let ops = opts.warmup_ops + opts.measure_ops;
        let stream = AccessStream::replay(
            spec.clone(),
            vspace.guest().spec().base_va,
            setup::stream_offsets(&spec, ops),
        );
        let guest_layout = vspace.guest().spec().layout.clone();
        let host_layout = vspace.host_layout().clone();
        let sim = Self::assemble(
            spec,
            config,
            &guest_layout,
            &host_layout,
            opts,
            vspace,
            stream,
        );
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Builds with explicit guest/host layouts (the Fig. 14 mobile case
    /// study sweeps flattening choices beyond the Fig. 12 set); the
    /// `config`'s flags still control PTP and the report label.
    ///
    /// # Panics
    ///
    /// Panics if the spaces cannot be built within `opts.phys_mem_bytes`.
    pub fn build_custom(
        spec: WorkloadSpec,
        config: VirtConfig,
        guest_layout: Layout,
        host_layout: Layout,
        opts: &SimOptions,
    ) -> Self {
        let start = Instant::now();
        let opts = Arc::new(opts.clone());
        let spec = spec.scaled_down(opts.footprint_divisor);
        let guest_flat = guest_layout != Layout::conventional4();
        let guest_spec = AddressSpaceSpec::new(guest_layout.clone(), spec.footprint)
            .with_scenario(opts.scenario)
            .with_nf_threshold(if guest_flat { Some(32) } else { None });
        // Hypervisors back guest memory with large pages where possible:
        // use at least the guest's large-page fraction, and a 50 % mix
        // even for 0 % guest scenarios (THP on the host side) — unless
        // the options pin the host mix (no-THP systems, §7.4).
        let host_scenario =
            opts.host_scenario
                .unwrap_or(if opts.scenario.large_page_fraction < 0.5 {
                    FragmentationScenario::HALF
                } else {
                    opts.scenario
                });
        let vspace = setup::frozen_virt_space(
            &guest_spec,
            &host_layout,
            host_scenario,
            opts.phys_mem_bytes,
            opts.hierarchy.numa.signature(),
        );
        let ops = opts.warmup_ops + opts.measure_ops;
        let stream = AccessStream::replay(
            spec.clone(),
            vspace.guest().spec().base_va,
            setup::stream_offsets(&spec, ops),
        );
        let sim = Self::assemble(
            spec,
            config,
            &guest_layout,
            &host_layout,
            opts,
            vspace,
            stream,
        );
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Assembles the per-cell mutable state (nested MMU, hierarchy)
    /// around the shared immutable artifacts.
    fn assemble(
        spec: WorkloadSpec,
        config: VirtConfig,
        guest_layout: &Layout,
        host_layout: &Layout,
        opts: Arc<SimOptions>,
        vspace: Arc<FrozenVirtSpace>,
        stream: AccessStream,
    ) -> Self {
        let guest_pwc = opts.pwc.for_layout(guest_layout);
        let host_pwc = opts.pwc.for_layout(host_layout);
        let mut mmu = Mmu::nested(
            opts.tlb.clone(),
            guest_pwc,
            host_pwc,
            opts.nested_tlb_entries,
            config.ptp,
        );
        mmu.set_phase_detector(flatwalk_tlb::PhaseDetector::new(
            opts.phase_window,
            opts.phase_threshold,
        ));
        let hier = MemoryHierarchy::new(opts.hierarchy.clone().with_priority_prob(opts.ptp_bias));
        VirtualizedSimulation {
            spec,
            config,
            opts,
            vspace,
            mmu,
            hier,
            stream,
        }
    }

    /// Runs warm-up then measurement; returns the report.
    ///
    /// # Panics
    ///
    /// Panics on an untranslatable guest access — use
    /// [`VirtualizedSimulation::try_run`] to get a structured
    /// [`SimError`](crate::SimError) instead.
    pub fn run(self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs warm-up then measurement; returns the report, or a
    /// [`SimError`](crate::SimError) identifying the exact guest access
    /// that failed to translate.
    pub fn try_run(self) -> Result<SimReport, crate::SimError> {
        let start = Instant::now();
        let VirtualizedSimulation {
            spec,
            config,
            opts,
            vspace,
            mut mmu,
            mut hier,
            mut stream,
        } = self;
        if flatwalk_obs::trace::any_enabled() {
            flatwalk_obs::trace::set_context(&format!("{}/{}", spec.name, config.label));
        }

        // Deterministic mid-run mutation schedule (see native.rs).
        let total_ops = opts.warmup_ops + opts.measure_ops;
        let fault_salt = flatwalk_faults::mix_str(spec.name)
            ^ flatwalk_faults::mix_str(config.label)
            ^ flatwalk_types::rng::splitmix_mix(spec.footprint);
        let events = flatwalk_faults::active()
            .map(|p| p.mutation_events(fault_salt, total_ops))
            .unwrap_or_default();

        // 2-D walks flow through the same batched span kernel as the
        // native driver: the nested walker is just a different
        // monomorphization of the engine's backend parameter.
        let aspace = MmuSpace::nested(NestedTables {
            guest_store: vspace.guest().store(),
            guest_table: vspace.guest().table(),
            host_store: vspace.host_store(),
            host_table: vspace.host_table(),
        });
        let mut backend = engine::MmuBackend::new(&mut mmu, aspace);
        let run = engine::EngineRun {
            scheme: config.label,
            workload: spec.name,
            core: None,
            work_per_access: spec.work_per_access,
            data_exposure: spec.data_exposure,
            l1_latency: opts.hierarchy.l1.latency,
            warmup_ops: opts.warmup_ops,
            measure_ops: opts.measure_ops,
            context_switch_interval: opts.context_switch_interval,
            events: &events,
        };
        let totals =
            engine::run_single(&mut backend, &mut hier, &mut stream, OwnerId::SINGLE, &run)?;

        let report = SimReport {
            workload: spec.name.to_string(),
            config: config.label,
            instructions: totals.instructions,
            cycles: totals.cycles.round() as u64,
            walk: mmu.stats().walker,
            tlb: mmu.stats().tlb,
            hier: hier.stats(),
            energy: hier.energy(&EnergyModel::default()),
            census: *vspace.guest().census(),
            phase_flips: mmu.phase_flips(),
            pwc: mmu.pwc_stats().unwrap_or_default(),
            faults: totals.faults,
        };
        setup::record_run_time(start.elapsed());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: VirtConfig, mib: u64) -> SimReport {
        let opts = SimOptions::small_test();
        VirtualizedSimulation::build(WorkloadSpec::gups().scaled_mib(mib), cfg, &opts).run()
    }

    #[test]
    fn fig12_set_is_complete() {
        let set = VirtConfig::fig12_set();
        assert_eq!(set.len(), 8);
        assert_eq!(set[0].label, "Base-2D");
        assert_eq!(set[7].label, "GF+HF+PTP");
        assert!(set[4..].iter().all(|c| c.ptp));
    }

    #[test]
    fn flattening_both_tables_cuts_walk_accesses() {
        let base = run(VirtConfig::fig12_set()[0], 64);
        let both = run(VirtConfig::fig12_set()[3], 64);
        assert!(
            base.walk.accesses_per_walk() > both.walk.accesses_per_walk(),
            "GF+HF must reduce accesses ({} vs {})",
            base.walk.accesses_per_walk(),
            both.walk.accesses_per_walk()
        );
        assert!(both.speedup_vs(&base) > 1.0);
    }

    #[test]
    fn virtualized_walks_cost_more_than_native() {
        let opts = SimOptions::small_test();
        let spec = WorkloadSpec::gups().scaled_mib(64);
        let native =
            crate::NativeSimulation::build(spec.clone(), TranslationConfig::baseline(), &opts)
                .run();
        let virt = run(VirtConfig::fig12_set()[0], 64);
        assert!(
            virt.walk.accesses_per_walk() > native.walk.accesses_per_walk(),
            "2-D walks must be costlier ({} vs {})",
            virt.walk.accesses_per_walk(),
            native.walk.accesses_per_walk()
        );
    }
}
