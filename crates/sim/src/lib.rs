//! The simulation engine: system configurations, single-core native and
//! virtualized runs, and the four-core multiprogrammed configuration.
//!
//! This crate composes the substrates — page tables (`flatwalk-pt`),
//! the kernel layer (`flatwalk-os`), TLBs/PWCs (`flatwalk-tlb`), the
//! walkers (`flatwalk-mmu`), the cache hierarchy (`flatwalk-mem`) and
//! the workload generators (`flatwalk-workloads`) — into the paper's
//! experimental setups:
//!
//! * [`NativeSimulation`] — Fig. 9/10 (native execution).
//! * [`VirtualizedSimulation`] — Fig. 12 (2-D walks; HF/GF/GF+HF).
//! * [`MulticoreSimulation`] — Fig. 11/Table 2 (shared-LLC mixes).
//!
//! Setup (address-space construction, stream generation) is split from
//! execution: builds freeze into immutable snapshots shared across the
//! experiment grid through the [`setup`] cache, so equivalent cells map
//! their footprint once instead of once per cell (disable with
//! `FLATWALK_NO_SETUP_CACHE=1`).
//!
//! Timing proxy: each access contributes its workload's non-memory
//! `work` (CPI 1), the translation stall (TLB latency beyond a 1-cycle
//! hit plus the full serial page-walk latency), and the data stall
//! beyond an L1 hit scaled by the workload's memory-level-parallelism
//! exposure factor. Absolute IPCs are therefore a proxy, but relative
//! changes track the translation/memory behaviour the paper measures —
//! see `DESIGN.md` for the argument and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod engine;
mod error;
mod multicore;
mod native;
mod report;
pub mod runner;
pub mod setup;
mod virt;

pub use config::{RivalKind, SimOptions, TranslationConfig};
pub use error::SimError;
pub use multicore::{
    all_mixes, alone_ipcs, mean_weighted_speedup, multicore_options, table2_mixes, Mix,
    MulticoreReport, MulticoreSimulation,
};
pub use native::NativeSimulation;
pub use report::SimReport;
pub use runner::{Cell, RivalRunner};
pub use virt::{VirtConfig, VirtualizedSimulation};
