//! Build-once/run-many setup cache for experiment grids.
//!
//! Every grid cell used to pay the full *setup* phase — mapping the
//! whole footprint through [`flatwalk_os::AddressSpace::build`]
//! (millions of mapper calls at paper scale) and regenerating the
//! access stream — even though cells in one binary routinely share the
//! exact same space: Base and PTP both use `conventional4`, FPT and
//! FPT+PTP both use `flat_l4l3_l2l1`, and the PWC/ratio sweeps re-map
//! an identical space 8+ times while only varying cache parameters.
//!
//! Builds are deterministic functions of their specification (each one
//! starts from a fresh buddy allocator and seeded RNGs), so a snapshot
//! built once *is* the snapshot every equivalent cell would have built.
//! This module keys frozen spaces ([`flatwalk_os::FrozenSpace`] /
//! [`flatwalk_os::FrozenVirtSpace`], multicore bundles) and generated
//! access-stream prefixes by the full content of their specification
//! and shares them behind `Arc`s. Concurrent cells requesting the same
//! key block on a single build (a once-cell per key) and then share the
//! result, so output stays byte-identical to a cache-off run at any
//! thread count.
//!
//! The cache's read path is **lock-free**: the four key→slot maps are
//! [`flatwalk_sync::SwapMap`]s (sharded, epoch-style snapshot swaps),
//! so a hit — every cell of a sweep after the first — is a hash probe
//! of an immutable snapshot with no `Mutex` acquisition. Misses take a
//! per-shard writer lock only to publish a fresh once-cell (a single
//! entry-API probe), then build *outside* that lock, preserving the
//! build-coalescing semantics above.
//!
//! Disable with `FLATWALK_NO_SETUP_CACHE=1` (every cell then builds
//! privately, as before this cache existed); tests can force either
//! mode programmatically via [`set_cache_override`]. Hit/miss/eviction
//! counters and the aggregate setup-vs-run time split are exported
//! through [`setup_stats`] (and the `setup.cache.*` counters of the
//! obs registry) and shown on the runner's stderr progress line.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use flatwalk_sync::SwapMap;

use flatwalk_faults::FaultyAllocator;
use flatwalk_os::{
    AddressSpace, AddressSpaceSpec, BuddyAllocator, FragmentationScenario, FrozenSpace,
    FrozenVirtSpace, VirtSpec, VirtualizedSpace,
};
use flatwalk_pt::{Layout, PhysAllocator};
use flatwalk_types::rng::{splitmix_mix, SplitMix64};
use flatwalk_workloads::{AccessStream, WorkloadSpec};

/// Cache key for a native address space: every input that influences
/// the built table. `FragmentationScenario` holds an `f64`, so the
/// fraction is keyed by its bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NativeKey {
    layout: Layout,
    base_va: u64,
    footprint: u64,
    scenario_bits: u64,
    nf_threshold: Option<u32>,
    phys_mem_bytes: u64,
    /// [`flatwalk_faults::signature_active`] at build time: snapshots
    /// built under different fault plans (or none) never alias.
    faults_sig: u64,
    /// [`flatwalk_mem::NumaTopology::signature`] of the requesting
    /// configuration: topologies with different node placement never
    /// share a snapshot (the single-node identity signature keys all
    /// pre-NUMA cells exactly as before).
    numa_sig: u64,
}

impl NativeKey {
    fn new(spec: &AddressSpaceSpec, phys_mem_bytes: u64, numa_sig: u64) -> Self {
        NativeKey {
            layout: spec.layout.clone(),
            base_va: spec.base_va,
            footprint: spec.footprint,
            scenario_bits: spec.scenario.large_page_fraction.to_bits(),
            nf_threshold: spec.nf_threshold,
            phys_mem_bytes,
            faults_sig: flatwalk_faults::signature_active(),
            numa_sig,
        }
    }
}

/// Cache key for a virtualized (guest + host) space: the guest key plus
/// the host layout and host large-page mix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct VirtKey {
    guest: NativeKey,
    host_layout: Layout,
    host_scenario_bits: u64,
}

/// Cache key for a four-core bundle. The cores share one buddy
/// allocator *sequentially* (core i's frames depend on what cores
/// 0..i allocated), so the bundle caches as a unit, never per core.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MulticoreKey {
    parts: [&'static str; 4],
    layout: Layout,
    nf_threshold: Option<u32>,
    scenario_bits: u64,
    footprint_divisor: u64,
    phys_mem_bytes: u64,
    faults_sig: u64,
    numa_sig: u64,
}

/// Cache key for a generated access-stream prefix. Offsets are
/// base-VA-relative (the base is added at replay), so the key carries
/// only the generator inputs; the pattern's `Debug` form round-trips
/// every float and so identifies the pattern content exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StreamKey {
    name: &'static str,
    footprint: u64,
    seed: u64,
    pattern: String,
    ops: u64,
}

/// One cache slot: concurrent requesters share the `OnceLock`, so the
/// first builds while the rest block, then everyone clones the `Arc`.
type Slot<T> = Arc<OnceLock<Arc<T>>>;

struct Caches {
    native: SwapMap<NativeKey, Slot<FrozenSpace>>,
    virt: SwapMap<VirtKey, Slot<FrozenVirtSpace>>,
    multicore: SwapMap<MulticoreKey, Slot<Vec<Arc<FrozenSpace>>>>,
    streams: SwapMap<StreamKey, Slot<Vec<u64>>>,
}

fn caches() -> &'static Caches {
    static CACHES: OnceLock<Caches> = OnceLock::new();
    CACHES.get_or_init(|| Caches {
        native: SwapMap::new(),
        virt: SwapMap::new(),
        multicore: SwapMap::new(),
        streams: SwapMap::new(),
    })
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static SETUP_NANOS: AtomicU64 = AtomicU64::new(0);
static RUN_NANOS: AtomicU64 = AtomicU64::new(0);

/// `0` = follow the environment, `1` = force on, `2` = force off.
/// The programmatic override exists for tests, which cannot mutate the
/// process environment safely while worker threads run.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Counters exported by the setup cache (process-wide totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetupStats {
    /// Requests served from an already-built snapshot (including
    /// requests that waited on a build another thread had in flight).
    pub hits: u64,
    /// Requests that performed the build.
    pub misses: u64,
    /// Entries dropped from the cache (see [`clear_setup_cache`]).
    pub evictions: u64,
    /// Total nanoseconds simulations spent in their build phase.
    pub setup_nanos: u64,
    /// Total nanoseconds simulations spent in their run phase.
    pub run_nanos: u64,
}

impl SetupStats {
    /// Stats accumulated since `earlier` (saturating).
    pub fn since(&self, earlier: &SetupStats) -> SetupStats {
        SetupStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            setup_nanos: self.setup_nanos.saturating_sub(earlier.setup_nanos),
            run_nanos: self.run_nanos.saturating_sub(earlier.run_nanos),
        }
    }
}

/// Snapshot of the process-wide setup-cache counters.
pub fn setup_stats() -> SetupStats {
    SetupStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        setup_nanos: SETUP_NANOS.load(Ordering::Relaxed),
        run_nanos: RUN_NANOS.load(Ordering::Relaxed),
    }
}

/// Drops every cached setup artifact, returning the number of entries
/// evicted (also counted into `setup.cache.evictions` in the obs
/// registry and [`SetupStats::evictions`]). Long-running hosts
/// (`flatwalk-serve`) can call this between job campaigns to release
/// snapshot memory; the next request for any key simply rebuilds.
pub fn clear_setup_cache() -> u64 {
    let c = caches();
    let evicted = (c.native.len() + c.virt.len() + c.multicore.len() + c.streams.len()) as u64;
    c.native.clear();
    c.virt.clear();
    c.multicore.clear();
    c.streams.clear();
    EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    flatwalk_obs::metrics::add_global("setup.cache.evictions", evicted);
    evicted
}

thread_local! {
    /// Per-cell phase-time accumulators. Each experiment cell runs
    /// wholly on one worker thread, so zeroing these at cell start and
    /// reading them at cell end attributes the process-wide
    /// `record_*_time` calls to that cell.
    static CELL_SETUP_NANOS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static CELL_RUN_NANOS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Zeroes this thread's per-cell setup/run time accumulators (the
/// runner calls this immediately before a cell's closure).
pub fn begin_cell_timing() {
    CELL_SETUP_NANOS.with(|c| c.set(0));
    CELL_RUN_NANOS.with(|c| c.set(0));
}

/// This thread's accumulated `(setup_nanos, run_nanos)` since the last
/// [`begin_cell_timing`].
pub fn cell_timing() -> (u64, u64) {
    (
        CELL_SETUP_NANOS.with(|c| c.get()),
        CELL_RUN_NANOS.with(|c| c.get()),
    )
}

/// Adds one simulation's build-phase duration to the process totals
/// (called by the simulation builders; feeds the progress meter's
/// setup-vs-run split).
pub fn record_setup_time(elapsed: Duration) {
    let nanos = elapsed.as_nanos() as u64;
    SETUP_NANOS.fetch_add(nanos, Ordering::Relaxed);
    CELL_SETUP_NANOS.with(|c| c.set(c.get() + nanos));
}

/// Adds one simulation's run-phase duration to the process totals.
pub fn record_run_time(elapsed: Duration) {
    let nanos = elapsed.as_nanos() as u64;
    RUN_NANOS.fetch_add(nanos, Ordering::Relaxed);
    CELL_RUN_NANOS.with(|c| c.set(c.get() + nanos));
}

/// Forces the setup cache on (`Some(true)`), off (`Some(false)`), or
/// back to the `FLATWALK_NO_SETUP_CACHE` environment setting (`None`).
pub fn set_cache_override(force: Option<bool>) {
    let v = match force {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether setup artifacts are being cached: the programmatic override
/// if set, else enabled unless `FLATWALK_NO_SETUP_CACHE` is set to a
/// non-empty value other than `0`.
pub fn cache_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => match std::env::var("FLATWALK_NO_SETUP_CACHE") {
            Ok(v) => v.is_empty() || v == "0",
            Err(_) => true,
        },
    }
}

fn get_or_build<K, T, F>(map: &SwapMap<K, Slot<T>>, key: K, build: F) -> Arc<T>
where
    K: Eq + Hash + Clone,
    F: FnOnce() -> Arc<T>,
{
    // Hot path: a known key is a lock-free snapshot probe — no Mutex.
    // A miss publishes a fresh once-cell with a single entry-API probe
    // under the shard's writer lock; the lock is released before
    // building, so concurrent cells with *different* keys build in
    // parallel while cells sharing this key block inside `get_or_init`
    // until the one build completes.
    //
    // The probe span covers the lookup *and* any blocking wait on a
    // sibling's in-flight build; the build itself opens its own
    // `setup.build` / `setup.freeze` spans, nested under this one.
    let _probe = flatwalk_obs::span::enter("setup.probe");
    let slot = match map.get(&key) {
        Some(slot) => slot,
        None => map.get_or_insert_with(key, || Arc::new(OnceLock::new())).0,
    };
    let mut built = false;
    let value = slot.get_or_init(|| {
        built = true;
        build()
    });
    if built {
        MISSES.fetch_add(1, Ordering::Relaxed);
        flatwalk_obs::metrics::add_global("setup.cache.miss", 1);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
        flatwalk_obs::metrics::add_global("setup.cache.hit", 1);
    }
    Arc::clone(value)
}

/// Runs `build` against `buddy`, decorated by the active fault plan's
/// allocation-fault injector (identity when no plan injects allocation
/// faults). The fault stream is derived only from the plan seed and
/// `salt` — which must come from cache-key inputs — so identical keys
/// always see identical fault sequences, regardless of cache state,
/// build order, or thread count. A `frag` plan additionally shreds part
/// of the pool first; the held frames stay live for the whole build,
/// keeping the fragmentation pressure on.
fn with_fault_alloc<T>(
    buddy: &mut BuddyAllocator,
    salt: u64,
    build: impl FnOnce(&mut dyn PhysAllocator) -> T,
) -> T {
    match flatwalk_faults::active().filter(|p| p.alloc_faults()) {
        Some(plan) => {
            if let Some((hold_fraction, max_bytes)) = plan.frag_campaign() {
                let mut rng = SplitMix64::new(splitmix_mix(plan.seed) ^ salt);
                let _held = buddy.fragment_region(&mut rng, hold_fraction, max_bytes);
            }
            let mut faulty =
                FaultyAllocator::new(buddy, plan.seed ^ salt, plan.refusal_probability());
            build(&mut faulty)
        }
        None => build(buddy),
    }
}

fn native_fault_salt(spec: &AddressSpaceSpec) -> u64 {
    splitmix_mix(spec.base_va)
        ^ splitmix_mix(spec.footprint)
        ^ spec.scenario.large_page_fraction.to_bits()
}

fn build_native(spec: &AddressSpaceSpec, phys_mem_bytes: u64) -> Arc<FrozenSpace> {
    let space = {
        let _build = flatwalk_obs::span::enter("setup.build");
        let mut buddy = BuddyAllocator::new(0, phys_mem_bytes);
        with_fault_alloc(&mut buddy, native_fault_salt(spec), |alloc| {
            AddressSpace::build(spec.clone(), alloc)
                .unwrap_or_else(|e| panic!("failed to build address space: {e}"))
        })
    };
    let _freeze = flatwalk_obs::span::enter("setup.freeze");
    Arc::new(space.freeze())
}

/// Returns the frozen snapshot for `spec`, building it on the first
/// request and sharing the `Arc` on every later one. Each build starts
/// from a fresh `BuddyAllocator::new(0, phys_mem_bytes)`, exactly as a
/// private per-cell build would, so the shared snapshot is
/// bit-identical to what any cell would construct for itself.
///
/// # Panics
///
/// Panics if the space cannot be built (physical memory too small for
/// the footprint).
pub fn frozen_native_space(
    spec: &AddressSpaceSpec,
    phys_mem_bytes: u64,
    numa_sig: u64,
) -> Arc<FrozenSpace> {
    if !cache_enabled() {
        return build_native(spec, phys_mem_bytes);
    }
    get_or_build(
        &caches().native,
        NativeKey::new(spec, phys_mem_bytes, numa_sig),
        || build_native(spec, phys_mem_bytes),
    )
}

fn build_virt(
    guest_spec: &AddressSpaceSpec,
    host_layout: &Layout,
    host_scenario: FragmentationScenario,
    phys_mem_bytes: u64,
) -> Arc<FrozenVirtSpace> {
    let vspec =
        VirtSpec::new(guest_spec.clone(), host_layout.clone()).with_host_scenario(host_scenario);
    // The host must back all of guest-physical memory plus its own
    // page-table nodes; size system memory accordingly (2x the guest,
    // power of two, placed above guest-physical addresses).
    let host_bytes = (vspec.guest_mem_bytes * 2).max(phys_mem_bytes.next_power_of_two());
    let vspace = {
        let _build = flatwalk_obs::span::enter("setup.build");
        let mut host_alloc = BuddyAllocator::new(host_bytes, host_bytes);
        let salt = native_fault_salt(guest_spec)
            ^ splitmix_mix(host_scenario.large_page_fraction.to_bits())
            ^ flatwalk_faults::mix_str("virt-host");
        with_fault_alloc(&mut host_alloc, salt, |alloc| {
            VirtualizedSpace::build(vspec, alloc)
                .unwrap_or_else(|e| panic!("failed to build virtualized space: {e}"))
        })
    };
    let _freeze = flatwalk_obs::span::enter("setup.freeze");
    Arc::new(vspace.freeze())
}

/// Returns the frozen guest + host snapshot for the given virtualized
/// configuration, building it on first request (see
/// [`frozen_native_space`] for the sharing contract).
///
/// # Panics
///
/// Panics if either table cannot be built.
pub fn frozen_virt_space(
    guest_spec: &AddressSpaceSpec,
    host_layout: &Layout,
    host_scenario: FragmentationScenario,
    phys_mem_bytes: u64,
    numa_sig: u64,
) -> Arc<FrozenVirtSpace> {
    if !cache_enabled() {
        return build_virt(guest_spec, host_layout, host_scenario, phys_mem_bytes);
    }
    let key = VirtKey {
        guest: NativeKey::new(guest_spec, phys_mem_bytes, numa_sig),
        host_layout: host_layout.clone(),
        host_scenario_bits: host_scenario.large_page_fraction.to_bits(),
    };
    get_or_build(&caches().virt, key, || {
        build_virt(guest_spec, host_layout, host_scenario, phys_mem_bytes)
    })
}

/// Per-core base VA used by the multicore simulation (core `i` gets a
/// 1 TB-spaced window).
pub fn multicore_base_va(core: usize) -> u64 {
    0x1000_0000_0000 + (core as u64) * 0x100_0000_0000
}

fn build_multicore(
    parts: [&'static str; 4],
    layout: &Layout,
    nf_threshold: Option<u32>,
    scenario: FragmentationScenario,
    footprint_divisor: u64,
    phys_mem_bytes: u64,
) -> Arc<Vec<Arc<FrozenSpace>>> {
    // The per-core builds freeze inline, so one span covers both here.
    let _build = flatwalk_obs::span::enter("setup.build");
    let mut buddy = BuddyAllocator::new(0, phys_mem_bytes);
    let salt = parts
        .iter()
        .fold(splitmix_mix(footprint_divisor), |acc, name| {
            acc ^ flatwalk_faults::mix_str(name)
        })
        ^ scenario.large_page_fraction.to_bits();
    let spaces = with_fault_alloc(&mut buddy, salt, |alloc| {
        parts
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let spec = WorkloadSpec::by_name(name)
                    .unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
                    .scaled_down(footprint_divisor);
                let space_spec = AddressSpaceSpec::new(layout.clone(), spec.footprint)
                    .with_scenario(scenario)
                    .with_nf_threshold(nf_threshold)
                    .with_base_va(multicore_base_va(i));
                Arc::new(
                    AddressSpace::build(space_spec, &mut *alloc)
                        .unwrap_or_else(|e| panic!("core {i} address space: {e}"))
                        .freeze(),
                )
            })
            .collect()
    });
    Arc::new(spaces)
}

/// Returns the four frozen per-core spaces for a multicore mix,
/// building them on first request. The four spaces are carved from one
/// shared physical memory in core order (as the simulation always did),
/// so they are cached as one bundle.
///
/// # Panics
///
/// Panics on unknown benchmark names or if physical memory cannot hold
/// all four footprints.
pub fn frozen_multicore_spaces(
    parts: [&'static str; 4],
    layout: &Layout,
    nf_threshold: Option<u32>,
    scenario: FragmentationScenario,
    footprint_divisor: u64,
    phys_mem_bytes: u64,
    numa_sig: u64,
) -> Arc<Vec<Arc<FrozenSpace>>> {
    if !cache_enabled() {
        return build_multicore(
            parts,
            layout,
            nf_threshold,
            scenario,
            footprint_divisor,
            phys_mem_bytes,
        );
    }
    let key = MulticoreKey {
        parts,
        layout: layout.clone(),
        nf_threshold,
        scenario_bits: scenario.large_page_fraction.to_bits(),
        footprint_divisor,
        phys_mem_bytes,
        faults_sig: flatwalk_faults::signature_active(),
        numa_sig,
    };
    get_or_build(&caches().multicore, key, || {
        build_multicore(
            parts,
            layout,
            nf_threshold,
            scenario,
            footprint_divisor,
            phys_mem_bytes,
        )
    })
}

fn generate_offsets(spec: &WorkloadSpec, ops: u64) -> Arc<Vec<u64>> {
    let mut stream = AccessStream::new(spec.clone(), 0);
    Arc::new((0..ops.max(1)).map(|_| stream.next_va().raw()).collect())
}

/// Returns the first `ops` footprint-relative offsets of `spec`'s
/// deterministic access stream, cached per (workload content, length).
/// A simulation replays the block at its own base VA
/// ([`AccessStream::replay`] adds the base per access), producing the
/// identical VA sequence a freshly seeded generator would — each run
/// consumes exactly its warm-up + measured operations, so the block is
/// never looped.
pub fn stream_offsets(spec: &WorkloadSpec, ops: u64) -> Arc<Vec<u64>> {
    if !cache_enabled() {
        return generate_offsets(spec, ops);
    }
    let key = StreamKey {
        name: spec.name,
        footprint: spec.footprint,
        seed: spec.seed,
        pattern: format!("{:?}", spec.pattern),
        ops,
    };
    get_or_build(&caches().streams, key, || generate_offsets(spec, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_pt::resolve;
    use flatwalk_types::VirtAddr;

    /// Tests in this module (and the integration tests) flip the cache
    /// override, which is process-global — serialize them.
    pub(crate) fn override_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner()) // lock-ok: test-only override
    }

    fn test_spec(base_va: u64) -> AddressSpaceSpec {
        AddressSpaceSpec::new(Layout::flat_l4l3_l2l1(), 16 << 20).with_base_va(base_va)
    }

    #[test]
    fn same_key_shares_one_snapshot() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let spec = test_spec(0x7000_0000_0000);
        let a = frozen_native_space(&spec, 1 << 30, 0);
        let b = frozen_native_space(&spec, 1 << 30, 0);
        assert!(Arc::ptr_eq(&a, &b), "identical keys must share the Arc");
        set_cache_override(None);
    }

    #[test]
    fn different_keys_build_distinct_snapshots() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let a = frozen_native_space(&test_spec(0x7100_0000_0000), 1 << 30, 0);
        let b = frozen_native_space(
            &test_spec(0x7100_0000_0000).with_scenario(FragmentationScenario::FULL),
            1 << 30,
            0,
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(
            a.build_stats().huge_data_pages,
            b.build_stats().huge_data_pages
        );
        set_cache_override(None);
    }

    #[test]
    fn cached_snapshot_matches_fresh_build() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let spec = test_spec(0x7200_0000_0000);
        let cached = frozen_native_space(&spec, 1 << 30, 0);
        set_cache_override(Some(false));
        let fresh = frozen_native_space(&spec, 1 << 30, 0);
        assert!(!Arc::ptr_eq(&cached, &fresh));
        assert_eq!(
            cached.store().materialized_frames(),
            fresh.store().materialized_frames()
        );
        assert_eq!(cached.table().root, fresh.table().root);
        let va = VirtAddr::new(spec.base_va + 0x1234);
        let a = resolve(cached.store(), cached.table(), va).unwrap();
        let b = resolve(fresh.store(), fresh.table(), va).unwrap();
        assert_eq!(a.pa, b.pa);
        set_cache_override(None);
    }

    #[test]
    fn hit_and_miss_counters_advance() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let before = setup_stats();
        let spec = test_spec(0x7300_0000_0000);
        let _a = frozen_native_space(&spec, 1 << 30, 0);
        let _b = frozen_native_space(&spec, 1 << 30, 0);
        // Other tests may bump the global counters concurrently, so the
        // assertion is a lower bound contributed by the two calls above.
        let delta = setup_stats().since(&before);
        assert!(delta.misses >= 1, "first request must build ({delta:?})");
        assert!(delta.hits >= 1, "second request must hit ({delta:?})");
        set_cache_override(None);
    }

    #[test]
    fn clear_counts_evictions() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let before = setup_stats();
        let _a = frozen_native_space(&test_spec(0x7600_0000_0000), 1 << 30, 0);
        let _b = frozen_native_space(&test_spec(0x7700_0000_0000), 1 << 30, 0);
        let evicted = clear_setup_cache();
        assert!(evicted >= 2, "both fresh entries must be dropped");
        let delta = setup_stats().since(&before);
        assert!(
            delta.evictions >= 2,
            "evictions counter advances ({delta:?})"
        );
        // The cleared keys rebuild as misses, not hits.
        let miss_base = setup_stats();
        let _a2 = frozen_native_space(&test_spec(0x7600_0000_0000), 1 << 30, 0);
        assert!(setup_stats().since(&miss_base).misses >= 1);
        set_cache_override(None);
    }

    #[test]
    fn disabled_cache_builds_privately() {
        let _guard = override_lock();
        set_cache_override(Some(false));
        assert!(!cache_enabled());
        let spec = test_spec(0x7400_0000_0000);
        let a = frozen_native_space(&spec, 1 << 30, 0);
        let b = frozen_native_space(&spec, 1 << 30, 0);
        assert!(!Arc::ptr_eq(&a, &b), "disabled cache must not share");
        set_cache_override(None);
    }

    #[test]
    fn stream_block_replays_identically() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let spec = WorkloadSpec::mcf().scaled_mib(32);
        let base = 0x5000_0000_0000u64;
        let block = stream_offsets(&spec, 4_000);
        let again = stream_offsets(&spec, 4_000);
        assert!(Arc::ptr_eq(&block, &again));
        let mut replayed = AccessStream::replay(spec.clone(), base, block);
        let mut synthetic = AccessStream::new(spec, base);
        for _ in 0..4_000 {
            assert_eq!(replayed.next_va(), synthetic.next_va());
        }
        set_cache_override(None);
    }

    #[test]
    fn numa_signature_separates_cache_keys() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let spec = test_spec(0x7800_0000_0000);
        let a = frozen_native_space(&spec, 1 << 30, 0);
        let b = frozen_native_space(&spec, 1 << 30, 0x1234);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different topology signatures must not share a snapshot"
        );
        set_cache_override(None);
    }

    #[test]
    fn multicore_bundle_is_shared_and_ordered() {
        let _guard = override_lock();
        set_cache_override(Some(true));
        let parts = ["gups", "dc", "mcf", "dc"];
        let a = frozen_multicore_spaces(
            parts,
            &Layout::conventional4(),
            None,
            FragmentationScenario::NONE,
            1024,
            2 << 30,
            0,
        );
        let b = frozen_multicore_spaces(
            parts,
            &Layout::conventional4(),
            None,
            FragmentationScenario::NONE,
            1024,
            2 << 30,
            0,
        );
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 4);
        for (i, space) in a.iter().enumerate() {
            assert_eq!(space.spec().base_va, multicore_base_va(i));
        }
        set_cache_override(None);
    }
}
