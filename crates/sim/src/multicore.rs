//! The multiprogrammed multicore simulation (paper §7.1 "Multicore",
//! Fig. 11, Table 2): four cores with private L1/L2, a 32 MB shared
//! LLC, and per-owner cache partitioning so one process' data cannot
//! evict another process' page table (§6.1).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use flatwalk_mem::{EnergyModel, HierarchyConfig, MemoryHierarchy};
use flatwalk_mmu::{AddressSpace as MmuSpace, Mmu};
use flatwalk_os::FrozenSpace;
use flatwalk_types::stats::geometric_mean;
use flatwalk_workloads::{AccessStream, WorkloadSpec};

use crate::{engine, setup, SimOptions, SimReport, TranslationConfig};

/// A multiprogrammed mix of four benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// Mix number as in Table 2 (or an extension id).
    pub id: u32,
    /// The four benchmark names.
    pub parts: [&'static str; 4],
}

impl Mix {
    /// Whether all four slots run the same benchmark.
    pub fn is_homogeneous(&self) -> bool {
        self.parts.iter().all(|p| *p == self.parts[0])
    }

    /// Human-readable description ("rand×2, dc×2").
    pub fn describe(&self) -> String {
        let mut counts: Vec<(&str, u32)> = Vec::new();
        for p in self.parts {
            match counts.iter_mut().find(|(n, _)| *n == p) {
                Some((_, c)) => *c += 1,
                None => counts.push((p, 1)),
            }
        }
        counts
            .iter()
            .map(|(n, c)| {
                if *c > 1 {
                    format!("{n}×{c}")
                } else {
                    (*n).to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The eight mixes of Table 2.
pub fn table2_mixes() -> Vec<Mix> {
    vec![
        Mix {
            id: 1,
            parts: ["dc", "dc", "dc", "dc"],
        },
        Mix {
            id: 2,
            parts: ["liblinear_H"; 4],
        },
        Mix {
            id: 3,
            parts: ["rand.", "rand.", "dc", "dc"],
        },
        Mix {
            id: 4,
            parts: ["rand.", "rand.", "hashjoin", "hashjoin"],
        },
        Mix {
            id: 5,
            parts: ["hashjoin", "hashjoin", "mummer", "mummer"],
        },
        Mix {
            id: 6,
            parts: ["liblinear", "liblinear", "xsbench", "xsbench"],
        },
        Mix {
            id: 7,
            parts: ["tiger", "tiger", "dfs", "bfs"],
        },
        Mix {
            id: 8,
            parts: ["rand.", "liblinear", "dc", "cc"],
        },
    ]
}

/// The full 20-mix set of §7.1: 11 homogeneous plus 9 heterogeneous
/// (the six heterogeneous Table 2 mixes and three further ones).
pub fn all_mixes() -> Vec<Mix> {
    let homo = [
        "dc",
        "liblinear_H",
        "rand.",
        "hashjoin",
        "mummer",
        "liblinear",
        "xsbench",
        "tiger",
        "dfs",
        "bfs",
        "cc",
    ];
    let mut mixes: Vec<Mix> = homo
        .iter()
        .enumerate()
        .map(|(i, n)| Mix {
            id: 100 + i as u32,
            parts: [n; 4],
        })
        .collect();
    mixes.extend(table2_mixes().into_iter().filter(|m| !m.is_homogeneous()));
    mixes.push(Mix {
        id: 200,
        parts: ["gups", "mcf", "omnetpp", "pr"],
    });
    mixes.push(Mix {
        id: 201,
        parts: ["graph500", "tc", "kcore", "sssp"],
    });
    mixes.push(Mix {
        id: 202,
        parts: ["gr.color.", "mummer", "xsbench", "gups"],
    });
    mixes
}

/// Result of one multicore run.
#[derive(Debug, Clone)]
pub struct MulticoreReport {
    /// The mix that ran.
    pub mix: Mix,
    /// Configuration label.
    pub config: &'static str,
    /// Per-core reports (index = core = mix slot).
    pub cores: Vec<SimReport>,
}

impl MulticoreReport {
    /// Per-core IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(|r| r.ipc()).collect()
    }

    /// Weighted speedup against per-benchmark alone-IPCs
    /// (`alone[i]` = IPC of slot `i`'s benchmark running alone on the
    /// same system).
    ///
    /// Returns `None` on length mismatch or zero alone-IPCs.
    pub fn weighted_speedup(&self, alone: &[f64]) -> Option<f64> {
        flatwalk_types::stats::weighted_speedup(&self.ipcs(), alone)
    }
}

struct Core {
    spec: WorkloadSpec,
    space: Arc<FrozenSpace>,
    mmu: Mmu,
    hier: MemoryHierarchy,
    stream: AccessStream,
}

/// A four-core multiprogrammed simulation over a shared LLC.
///
/// # Examples
///
/// ```
/// use flatwalk_sim::{table2_mixes, MulticoreSimulation, SimOptions, TranslationConfig};
///
/// let mut opts = SimOptions::small_test();
/// opts.footprint_divisor = 64;
/// opts.phys_mem_bytes = 2 << 30;
/// let report = MulticoreSimulation::build(
///     &table2_mixes()[0], // dc×4
///     TranslationConfig::baseline(),
///     &opts,
/// ).run();
/// assert_eq!(report.cores.len(), 4);
/// ```
pub struct MulticoreSimulation {
    mix: Mix,
    config: TranslationConfig,
    opts: Arc<SimOptions>,
    cores: Vec<Core>,
}

impl MulticoreSimulation {
    /// Builds four cores with private L1/L2, a shared L3/DRAM, and
    /// per-core address spaces carved from one physical memory. The
    /// four frozen spaces come from the setup cache as one bundle
    /// ([`crate::setup::frozen_multicore_spaces`]) — the cores allocate
    /// from the shared buddy sequentially, so the bundle is the sharing
    /// unit.
    ///
    /// # Panics
    ///
    /// Panics on unknown benchmark names or if physical memory cannot
    /// hold all four footprints.
    pub fn build(mix: &Mix, config: TranslationConfig, opts: &SimOptions) -> Self {
        let opts = Arc::new(opts.clone());
        let spaces = setup::frozen_multicore_spaces(
            mix.parts,
            &config.layout,
            config.nf_threshold,
            opts.scenario,
            opts.footprint_divisor,
            opts.phys_mem_bytes,
            opts.hierarchy.numa.signature(),
        );
        Self::build_with_spaces(mix, config, opts, spaces)
    }

    /// Builds around four pre-frozen per-core spaces — the
    /// build-once/run-many path. `spaces[i]` must have been built at
    /// [`crate::setup::multicore_base_va`]`(i)` for slot `i`'s scaled
    /// footprint (as [`crate::setup::frozen_multicore_spaces`] does).
    ///
    /// # Panics
    ///
    /// Panics if fewer than four spaces are supplied or a space cannot
    /// hold its slot's scaled footprint.
    pub fn build_with_spaces(
        mix: &Mix,
        config: TranslationConfig,
        opts: Arc<SimOptions>,
        spaces: Arc<Vec<Arc<FrozenSpace>>>,
    ) -> Self {
        let start = Instant::now();
        assert!(spaces.len() >= 4, "need one frozen space per core");
        let hier_cfg = opts.hierarchy.clone().with_priority_prob(opts.ptp_bias);
        let shared = MemoryHierarchy::new(hier_cfg.clone());
        let l3 = shared.shared_l3();
        let dram = shared.shared_dram();
        drop(shared);
        let ops = opts.warmup_ops + opts.measure_ops;

        let cores = mix
            .parts
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let spec = WorkloadSpec::by_name(name)
                    .unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
                    .scaled_down(opts.footprint_divisor);
                let space = Arc::clone(&spaces[i]);
                assert!(
                    space.spec().footprint >= spec.footprint,
                    "core {i} frozen space ({} B) smaller than footprint ({} B)",
                    space.spec().footprint,
                    spec.footprint
                );
                let mut mmu = Mmu::native(
                    opts.tlb.clone(),
                    opts.pwc.for_layout(&config.layout),
                    config.ptp,
                );
                mmu.set_phase_detector(flatwalk_tlb::PhaseDetector::new(
                    opts.phase_window,
                    opts.phase_threshold,
                ));
                let mut hier = MemoryHierarchy::with_shared_l3(
                    hier_cfg.clone(),
                    std::rc::Rc::clone(&l3),
                    std::rc::Rc::clone(&dram),
                );
                // Cores spread round-robin across the memory nodes (a
                // no-op on the single-node identity topology).
                hier.set_node(i as u32);
                let stream = AccessStream::replay(
                    spec.clone(),
                    space.spec().base_va,
                    setup::stream_offsets(&spec, ops),
                );
                Core {
                    spec,
                    space,
                    mmu,
                    hier,
                    stream,
                }
            })
            .collect();

        let sim = MulticoreSimulation {
            mix: mix.clone(),
            config,
            opts,
            cores,
        };
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Runs all cores round-robin (one access per core per round) and
    /// reports per-core results.
    ///
    /// # Panics
    ///
    /// Panics on an untranslatable access — use
    /// [`MulticoreSimulation::try_run`] to get a structured
    /// [`SimError`](crate::SimError) instead.
    pub fn run(self) -> MulticoreReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs all cores round-robin; returns the per-core reports, or a
    /// [`SimError`](crate::SimError) identifying the exact access (and
    /// core) that failed to translate.
    pub fn try_run(mut self) -> Result<MulticoreReport, crate::SimError> {
        let start = Instant::now();
        if flatwalk_obs::trace::any_enabled() {
            flatwalk_obs::trace::set_context(&format!("mix{}/{}", self.mix.id, self.config.label));
        }
        let l1_lat = self.opts.hierarchy.l1.latency;

        // Per-core deterministic mid-run mutation schedules (see
        // native.rs); each core draws its own stream, salted by its
        // index, so schedules differ per core but never per thread
        // count.
        let total_ops = self.opts.warmup_ops + self.opts.measure_ops;
        let plan = flatwalk_faults::active();
        let mix_salt = flatwalk_faults::mix_str(self.config.label)
            ^ flatwalk_types::rng::splitmix_mix(self.mix.id as u64);

        let mut engine_cores: Vec<engine::EngineCore<'_, engine::MmuBackend<'_>>> = self
            .cores
            .iter_mut()
            .enumerate()
            .map(|(i, core)| {
                let salt = mix_salt
                    ^ flatwalk_faults::mix_str(core.spec.name)
                    ^ flatwalk_types::rng::splitmix_mix(i as u64 + 1);
                let events = plan
                    .as_ref()
                    .map(|p| p.mutation_events(salt, total_ops))
                    .unwrap_or_default();
                let aspace = MmuSpace::native(core.space.store(), core.space.table());
                engine::EngineCore {
                    backend: engine::MmuBackend::new(&mut core.mmu, aspace),
                    hier: &mut core.hier,
                    stream: &mut core.stream,
                    workload: core.spec.name,
                    work_per_access: core.spec.work_per_access,
                    data_exposure: core.spec.data_exposure,
                    events,
                }
            })
            .collect();
        let totals = engine::run_multicore(
            &mut engine_cores,
            self.config.label,
            l1_lat,
            self.opts.warmup_ops,
            self.opts.measure_ops,
        )?;

        let config = self.config.label;
        let cores = self
            .cores
            .into_iter()
            .zip(totals)
            .map(|(c, totals)| SimReport {
                workload: c.spec.name.to_string(),
                config,
                instructions: totals.instructions,
                cycles: totals.cycles.round() as u64,
                walk: c.mmu.stats().walker,
                tlb: c.mmu.stats().tlb,
                hier: c.hier.stats(),
                energy: c.hier.energy(&EnergyModel::default()),
                census: *c.space.census(),
                phase_flips: c.mmu.phase_flips(),
                pwc: c.mmu.pwc_stats().unwrap_or_default(),
                faults: totals.faults,
            })
            .collect();
        let report = MulticoreReport {
            mix: self.mix,
            config,
            cores,
        };
        setup::record_run_time(start.elapsed());
        Ok(report)
    }
}

/// Computes alone-run IPCs for every distinct benchmark in `mixes`,
/// using the same (multicore-sized) system configuration — the
/// denominator of the weighted speedup.
pub fn alone_ipcs(
    mixes: &[Mix],
    config: &TranslationConfig,
    opts: &SimOptions,
) -> HashMap<&'static str, f64> {
    let mut out = HashMap::new();
    for mix in mixes {
        for name in mix.parts {
            if out.contains_key(name) {
                continue;
            }
            let spec =
                WorkloadSpec::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
            let r = crate::NativeSimulation::build(spec, config.clone(), opts).run();
            out.insert(name, r.ipc());
        }
    }
    out
}

/// Geometric-mean weighted speedup across mixes, each normalized to the
/// supplied alone-IPC table.
pub fn mean_weighted_speedup(
    reports: &[MulticoreReport],
    alone: &HashMap<&'static str, f64>,
) -> Option<f64> {
    let per_mix: Vec<f64> = reports
        .iter()
        .map(|r| {
            let alone_vec: Vec<f64> = r
                .mix
                .parts
                .iter()
                .map(|n| *alone.get(n).expect("alone IPC computed"))
                .collect();
            r.weighted_speedup(&alone_vec).expect("valid speedup")
        })
        .collect();
    geometric_mean(&per_mix)
}

/// Multicore preset: Table 1 cores with the §7.1 32 MB shared LLC.
pub fn multicore_options() -> SimOptions {
    let mut opts = SimOptions::server();
    opts.hierarchy = HierarchyConfig::server_multicore();
    opts.phys_mem_bytes = 64 << 30;
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let mixes = table2_mixes();
        assert_eq!(mixes.len(), 8);
        assert!(mixes[0].is_homogeneous());
        assert_eq!(mixes[2].parts, ["rand.", "rand.", "dc", "dc"]);
        assert_eq!(mixes[2].describe(), "rand.×2, dc×2");
        // Every referenced benchmark exists in the suite.
        for m in &mixes {
            for p in m.parts {
                assert!(
                    WorkloadSpec::by_name(p).is_some(),
                    "unknown benchmark {p} in mix {}",
                    m.id
                );
            }
        }
    }

    #[test]
    fn twenty_mixes_with_eleven_homogeneous() {
        let mixes = all_mixes();
        assert_eq!(mixes.len(), 20);
        let homo = mixes.iter().filter(|m| m.is_homogeneous()).count();
        assert_eq!(homo, 11);
        for m in &mixes {
            for p in m.parts {
                assert!(WorkloadSpec::by_name(p).is_some(), "unknown {p}");
            }
        }
    }

    fn tiny_opts() -> SimOptions {
        let mut opts = SimOptions::small_test();
        opts.footprint_divisor = 64;
        opts.phys_mem_bytes = 2 << 30;
        opts
    }

    #[test]
    fn multicore_run_produces_four_reports() {
        let r = MulticoreSimulation::build(
            &table2_mixes()[7], // rand, liblinear, dc, cc
            TranslationConfig::baseline(),
            &tiny_opts(),
        )
        .run();
        assert_eq!(r.cores.len(), 4);
        assert!(r.cores.iter().all(|c| c.ipc() > 0.0));
        // The random-access core should walk far more than the dc core.
        assert!(r.cores[0].tlb.walk_rate() > r.cores[2].tlb.walk_rate());
    }

    #[test]
    fn weighted_speedup_identity() {
        let r = MulticoreSimulation::build(
            &table2_mixes()[0],
            TranslationConfig::baseline(),
            &tiny_opts(),
        )
        .run();
        let ipcs = r.ipcs();
        let ws = r.weighted_speedup(&ipcs).unwrap();
        assert!((ws - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_llc_interference_is_visible() {
        // dc alone vs dc sharing with three random-access hogs.
        let opts = tiny_opts();
        let alone = crate::NativeSimulation::build(
            WorkloadSpec::dc().scaled_down(opts.footprint_divisor),
            TranslationConfig::baseline(),
            &opts,
        )
        .run();
        let mixed = MulticoreSimulation::build(
            &Mix {
                id: 999,
                parts: ["rand.", "rand.", "rand.", "dc"],
            },
            TranslationConfig::baseline(),
            &opts,
        )
        .run();
        let dc_shared = &mixed.cores[3];
        assert!(
            dc_shared.ipc() <= alone.ipc() * 1.02,
            "sharing cannot speed dc up ({} vs {})",
            dc_shared.ipc(),
            alone.ipc()
        );
    }
}
