//! Simulation configuration: system presets and technique selection.

use flatwalk_mem::HierarchyConfig;
use flatwalk_os::FragmentationScenario;
use flatwalk_pt::Layout;
use flatwalk_tlb::{PwcConfig, TlbSystemConfig};

/// A rival translation scheme selected for a cell, as pure data (the
/// runner dispatches to a scheme-crate entry point; keeping the kind
/// data-only lets result caches key on it without a dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RivalKind {
    /// Victima (MICRO 2023): TLB entries spilled into the L2 cache.
    Victima,
    /// Mitosis (ASPLOS 2020): per-node page-table replication.
    /// `replicate: false` is the NUMA baseline column — same topology,
    /// no replicas.
    Mitosis {
        /// Whether page tables are actually replicated per node.
        replicate: bool,
    },
}

/// Which of the paper's techniques a run enables — the columns of
/// Fig. 9/12.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationConfig {
    /// Short label used in reports ("Base", "FPT", "PTP", "FPT+PTP", …).
    pub label: &'static str,
    /// Page-table organization (the guest's, under virtualization).
    pub layout: Layout,
    /// Page-table prioritization in the L2/LLC (§5).
    pub ptp: bool,
    /// §3.4 no-flatten threshold (2 MB mappings per 1 GB region).
    pub nf_threshold: Option<u32>,
}

impl TranslationConfig {
    /// Conventional 4-level table, plain LRU caches.
    pub fn baseline() -> Self {
        TranslationConfig {
            label: "Base",
            layout: Layout::conventional4(),
            ptp: false,
            nf_threshold: None,
        }
    }

    /// Flattened page table (L4+L3 and L2+L1), with NF regions.
    pub fn flattened() -> Self {
        TranslationConfig {
            label: "FPT",
            layout: Layout::flat_l4l3_l2l1(),
            ptp: false,
            nf_threshold: Some(32),
        }
    }

    /// Flattened *without* the §3.4 no-flatten optimization (the "FPT"
    /// bars of Fig. 4, which suffer replicated entries for 2 MB pages).
    pub fn flattened_no_nf() -> Self {
        TranslationConfig {
            label: "FPT-NF",
            layout: Layout::flat_l4l3_l2l1(),
            ptp: false,
            nf_threshold: None,
        }
    }

    /// Conventional table + page-table prioritization.
    pub fn prioritized() -> Self {
        TranslationConfig {
            label: "PTP",
            layout: Layout::conventional4(),
            ptp: true,
            nf_threshold: None,
        }
    }

    /// The paper's headline combination.
    pub fn flattened_prioritized() -> Self {
        TranslationConfig {
            label: "FPT+PTP",
            layout: Layout::flat_l4l3_l2l1(),
            ptp: true,
            nf_threshold: Some(32),
        }
    }

    /// L3+L2 flattening (the kernel prototype's target, §7.5).
    pub fn flattened_l3l2() -> Self {
        TranslationConfig {
            label: "FPT(L3+L2)",
            layout: Layout::flat_l3l2(),
            ptp: false,
            nf_threshold: None,
        }
    }

    /// The Fig. 9 configuration set, in presentation order.
    pub fn fig9_set() -> Vec<TranslationConfig> {
        vec![
            Self::baseline(),
            Self::flattened(),
            Self::prioritized(),
            Self::flattened_prioritized(),
        ]
    }

    /// Relabels this configuration (for sweeps).
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }
}

/// Engine parameters shared by all simulation kinds.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Accesses executed before statistics are reset.
    pub warmup_ops: u64,
    /// Accesses measured after warm-up.
    pub measure_ops: u64,
    /// Physical memory backing native address spaces (buddy-allocated).
    /// Virtualized runs size host memory from the guest footprint and
    /// use this value only as a lower bound.
    pub phys_mem_bytes: u64,
    /// Cache hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// TLB complex configuration.
    pub tlb: TlbSystemConfig,
    /// Paging-structure-cache configuration.
    pub pwc: PwcConfig,
    /// Nested-TLB entries (virtualized runs; Table 1: 16).
    pub nested_tlb_entries: usize,
    /// Divide every workload footprint by this factor (1 = paper scale).
    pub footprint_divisor: u64,
    /// Large-page mix of the (guest) address space.
    pub scenario: FragmentationScenario,
    /// Large-page mix of the *host* (stage-2) mapping in virtualized
    /// runs. `None` = hypervisor THP behaviour (at least 50 % 2 MB);
    /// `Some(NONE)` models systems without THP, like the paper's AOSP
    /// mobile stack (§7.4).
    pub host_scenario: Option<FragmentationScenario>,
    /// §6.1 eviction bias for PTP configurations (the "99 %").
    pub ptp_bias: f64,
    /// Phase-detector window in translations (§5 detection).
    pub phase_window: u64,
    /// Phase-detector TLB-miss-rate threshold.
    pub phase_threshold: f64,
    /// Simulate a context switch (TLB + PSC flush, caches kept) every
    /// this many accesses; `None` = uninterrupted execution, the
    /// paper's default. CSALT's design point assumes very frequent
    /// switches (§7.1) — the `ablation_context_switch` experiment
    /// recreates it.
    pub context_switch_interval: Option<u64>,
}

impl SimOptions {
    /// Paper-scale server settings (Table 1): full footprints; warm-up
    /// plus measurement sized for stable statistics.
    pub fn server() -> Self {
        SimOptions {
            warmup_ops: 300_000,
            measure_ops: 1_000_000,
            phys_mem_bytes: 16 << 30,
            hierarchy: HierarchyConfig::server(),
            tlb: TlbSystemConfig::server(),
            pwc: PwcConfig::server(),
            nested_tlb_entries: 16,
            footprint_divisor: 1,
            scenario: FragmentationScenario::NONE,
            host_scenario: None,
            ptp_bias: 0.99,
            phase_window: 4096,
            phase_threshold: 0.02,
            context_switch_interval: None,
        }
    }

    /// Faster server settings for exploratory runs: footprints ÷ 4.
    pub fn server_quick() -> Self {
        SimOptions {
            warmup_ops: 100_000,
            measure_ops: 300_000,
            phys_mem_bytes: 4 << 30,
            footprint_divisor: 4,
            ..Self::server()
        }
    }

    /// Mobile settings (Table 3).
    pub fn mobile() -> Self {
        SimOptions {
            warmup_ops: 100_000,
            measure_ops: 400_000,
            phys_mem_bytes: 2 << 30,
            hierarchy: HierarchyConfig::mobile(),
            tlb: TlbSystemConfig::mobile(),
            pwc: PwcConfig::mobile(),
            nested_tlb_entries: 16,
            footprint_divisor: 1,
            scenario: FragmentationScenario::NONE,
            // AOSP does not use transparent huge pages (§7.4): the
            // stage-2 mapping is 4 KB-grained.
            host_scenario: Some(FragmentationScenario::NONE),
            ptp_bias: 0.99,
            phase_window: 4096,
            phase_threshold: 0.02,
            context_switch_interval: None,
        }
    }

    /// Tiny settings for unit tests and doctests.
    pub fn small_test() -> Self {
        SimOptions {
            warmup_ops: 2_000,
            measure_ops: 10_000,
            phys_mem_bytes: 1 << 30,
            hierarchy: HierarchyConfig::server(),
            tlb: TlbSystemConfig::server(),
            pwc: PwcConfig::server(),
            nested_tlb_entries: 16,
            footprint_divisor: 1,
            scenario: FragmentationScenario::NONE,
            host_scenario: None,
            ptp_bias: 0.99,
            phase_window: 4096,
            phase_threshold: 0.02,
            context_switch_interval: None,
        }
    }

    /// Sets the large-page scenario.
    pub fn with_scenario(mut self, scenario: FragmentationScenario) -> Self {
        self.scenario = scenario;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_set_order_and_flags() {
        let set = TranslationConfig::fig9_set();
        assert_eq!(
            set.iter().map(|c| c.label).collect::<Vec<_>>(),
            vec!["Base", "FPT", "PTP", "FPT+PTP"]
        );
        assert!(!set[0].ptp && !set[1].ptp && set[2].ptp && set[3].ptp);
        assert_eq!(set[1].layout, Layout::flat_l4l3_l2l1());
        assert_eq!(set[2].layout, Layout::conventional4());
    }

    #[test]
    fn presets_are_consistent() {
        let s = SimOptions::server();
        assert_eq!(s.footprint_divisor, 1);
        assert!(s.phys_mem_bytes >= 16 << 30);
        let q = SimOptions::server_quick();
        assert_eq!(q.footprint_divisor, 4);
        let m = SimOptions::mobile();
        assert!(m.hierarchy.l3.size_bytes < s.hierarchy.l3.size_bytes);
    }
}
