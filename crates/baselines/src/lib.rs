//! Behavioural models of the translation schemes the paper compares
//! against (§2, Fig. 9/13): Elastic Cuckoo Hashing, ASAP prefetched
//! translation, POM_TLB, and CSALT.
//!
//! All schemes share the front-side TLBs, the cache hierarchy, the
//! workloads, and the timing proxy with the main simulator
//! ([`SchemeSimulation`]); only the post-TLB-miss translation machinery
//! differs. See each module for the modelling notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asap;
mod ech;
mod mitosis;
mod pom;
mod scheme;
mod victima;

pub use asap::AsapScheme;
pub use ech::EchScheme;
pub use mitosis::MitosisScheme;
pub use pom::PomTlbScheme;
pub use scheme::{Scheme, SchemeSimulation, SchemeWalk, WalkCtx};
pub use victima::VictimaScheme;

use flatwalk_sim::{Cell, RivalKind, SimError, SimReport};

/// The [`flatwalk_sim::RivalRunner`] for this crate's rival schemes:
/// grid builders hand this to [`Cell::rival`] so rival cells run
/// through the same runner/cache machinery as native cells.
///
/// # Errors
///
/// Returns the underlying [`SimError`] for an untranslatable access.
pub fn run_rival(cell: &Cell, kind: RivalKind) -> Result<SimReport, SimError> {
    match kind {
        RivalKind::Victima => SchemeSimulation::build(
            cell.workload.clone(),
            VictimaScheme::new(64 << 10, cell.opts.pwc.clone()),
            &cell.opts,
        )
        .try_run(),
        RivalKind::Mitosis { replicate } => SchemeSimulation::build(
            cell.workload.clone(),
            MitosisScheme::new(
                cell.opts.hierarchy.numa.clone(),
                replicate,
                cell.opts.pwc.clone(),
            ),
            &cell.opts,
        )
        .try_run(),
    }
}
