//! Behavioural models of the translation schemes the paper compares
//! against (§2, Fig. 9/13): Elastic Cuckoo Hashing, ASAP prefetched
//! translation, POM_TLB, and CSALT.
//!
//! All schemes share the front-side TLBs, the cache hierarchy, the
//! workloads, and the timing proxy with the main simulator
//! ([`SchemeSimulation`]); only the post-TLB-miss translation machinery
//! differs. See each module for the modelling notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asap;
mod ech;
mod pom;
mod scheme;

pub use asap::AsapScheme;
pub use ech::EchScheme;
pub use pom::PomTlbScheme;
pub use scheme::{Scheme, SchemeSimulation, SchemeWalk, WalkCtx};
