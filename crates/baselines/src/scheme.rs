//! The common harness for comparison translation schemes (paper §2,
//! Fig. 9/13): each scheme replaces the radix page walk with its own
//! structure, but shares the TLBs, cache hierarchy, workloads, and
//! timing proxy with the main simulator.
//!
//! Translation *results* come from a functional oracle walk of the real
//! radix table (the address space is identical across schemes); each
//! scheme charges the *timing and memory traffic* its own structure
//! would generate. This keeps correctness orthogonal to cost modelling.

use std::sync::Arc;
use std::time::Instant;

use flatwalk_mem::{EnergyModel, MemoryHierarchy};
use flatwalk_mmu::WalkerStats;
use flatwalk_os::{AddressSpaceSpec, FrozenSpace};
use flatwalk_pt::{FrameStore, PageTable};
use flatwalk_sim::{setup, SimOptions, SimReport};
use flatwalk_tlb::{PhaseDetector, TlbSystem};
use flatwalk_types::{OwnerId, PageSize, PhysAddr, VirtAddr};
use flatwalk_workloads::{AccessStream, WorkloadSpec};

/// Static context a scheme's walk may consult.
#[derive(Debug, Clone, Copy)]
pub struct WalkCtx<'a> {
    /// Page-table contents of the oracle radix table.
    pub store: &'a FrameStore,
    /// The oracle radix table.
    pub table: &'a PageTable,
}

/// Cost and result of one scheme-specific translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeWalk {
    /// Translated physical address (offset included).
    pub pa: PhysAddr,
    /// Translation granularity (for the TLB fill).
    pub size: PageSize,
    /// Cycles the translation took.
    pub latency: u64,
    /// Memory-system accesses it performed.
    pub accesses: u64,
}

/// A comparison translation scheme.
pub trait Scheme {
    /// Label used in reports ("ECH", "ASAP", "CSALT", "POM_TLB").
    fn label(&self) -> &'static str;

    /// Performs the translation after an L1/L2 TLB miss. Returns a
    /// [`WalkError`](flatwalk_pt::WalkError) for an unmapped or
    /// malformed translation instead of panicking, so the grid runner
    /// can isolate the failing cell.
    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError>;

    /// Whether this scheme biases the cache replacement policy toward
    /// its translation structures (CSALT does).
    fn wants_priority(&self) -> bool {
        false
    }

    /// Reacts to a context switch. The default flushes nothing — which
    /// is correct for POM_TLB/CSALT (the in-DRAM TLB survives switches,
    /// their core advantage); schemes with per-process on-chip state
    /// override it.
    fn context_switch(&mut self) {}
}

/// Runs a workload under a comparison scheme, with the same engine and
/// timing proxy as [`flatwalk_sim::NativeSimulation`].
pub struct SchemeSimulation<S: Scheme> {
    spec: WorkloadSpec,
    opts: Arc<SimOptions>,
    space: Arc<FrozenSpace>,
    tlb: TlbSystem,
    scheme: S,
    hier: MemoryHierarchy,
    stream: AccessStream,
    phase: PhaseDetector,
    walker_stats: WalkerStats,
}

impl<S: Scheme> SchemeSimulation<S> {
    /// Builds the (conventional 4-level) address space and the scheme.
    /// The space and stream prefix come from the shared setup cache
    /// ([`flatwalk_sim::setup`]): every comparison scheme walks the
    /// same oracle table, so one frozen snapshot serves them all.
    ///
    /// # Panics
    ///
    /// Panics if the address space cannot be built.
    pub fn build(spec: WorkloadSpec, scheme: S, opts: &SimOptions) -> Self {
        let start = Instant::now();
        let opts = Arc::new(opts.clone());
        let spec = spec.scaled_down(opts.footprint_divisor);
        let space_spec =
            AddressSpaceSpec::new(flatwalk_pt::Layout::conventional4(), spec.footprint)
                .with_scenario(opts.scenario)
                .with_nf_threshold(None);
        let space = setup::frozen_native_space(&space_spec, opts.phys_mem_bytes);
        let tlb = TlbSystem::new(opts.tlb.clone());
        // Honor the same prioritization knobs as the native engine so
        // ablation sweeps compare like against like.
        let hier = MemoryHierarchy::new(opts.hierarchy.clone().with_priority_prob(opts.ptp_bias));
        let ops = opts.warmup_ops + opts.measure_ops;
        let stream = AccessStream::replay(
            spec.clone(),
            space.spec().base_va,
            setup::stream_offsets(&spec, ops),
        );
        let phase = PhaseDetector::new(opts.phase_window, opts.phase_threshold);
        let sim = SchemeSimulation {
            spec,
            opts,
            space,
            tlb,
            scheme,
            hier,
            stream,
            phase,
            walker_stats: WalkerStats::default(),
        };
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Runs warm-up then measurement; returns the report.
    ///
    /// # Panics
    ///
    /// Panics on an untranslatable access — use
    /// [`SchemeSimulation::try_run`] to get a structured
    /// [`SimError`](flatwalk_sim::SimError) instead.
    pub fn run(self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs warm-up then measurement; returns the report, or a
    /// [`SimError`](flatwalk_sim::SimError) identifying the exact
    /// access that failed to translate.
    pub fn try_run(mut self) -> Result<SimReport, flatwalk_sim::SimError> {
        let start = Instant::now();
        if flatwalk_obs::trace::any_enabled() {
            flatwalk_obs::trace::set_context(&format!(
                "{}/{}",
                self.spec.name,
                self.scheme.label()
            ));
        }
        let work = self.spec.work_per_access;
        let exposure = self.spec.data_exposure;
        let l1_lat = self.opts.hierarchy.l1.latency;
        let wants_priority = self.scheme.wants_priority();
        let mut cycles_f = 0.0f64;
        let mut instructions = 0u64;
        let mut stream_pos = 0u64;

        for phase_idx in 0..2u32 {
            let ops = if phase_idx == 0 {
                self.opts.warmup_ops
            } else {
                self.opts.measure_ops
            };
            if phase_idx == 1 {
                self.phase.reset_flips();
                self.tlb.reset_stats();
                self.hier.reset_stats();
                self.walker_stats = WalkerStats::default();
                cycles_f = 0.0;
                instructions = 0;
            }
            for op in 0..ops {
                if let Some(n) = self.opts.context_switch_interval {
                    if op > 0 && op % n == 0 {
                        self.tlb.flush();
                        self.scheme.context_switch();
                    }
                }
                let va = self.stream.next_va();
                let lookup = self.tlb.lookup(va);
                if wants_priority {
                    let active = self.phase.record(lookup.translation.is_none());
                    self.hier.set_priority_phase(active);
                }
                let (pa, translation_latency) = match lookup.translation {
                    Some((frame, size)) => (frame.add(va.offset(size)), lookup.latency),
                    None => {
                        let ctx = WalkCtx {
                            store: self.space.store(),
                            table: self.space.table(),
                        };
                        let w = self
                            .scheme
                            .walk(&ctx, va, &mut self.hier, OwnerId::SINGLE)
                            .map_err(|e| flatwalk_sim::SimError {
                                scheme: self.scheme.label(),
                                workload: self.spec.name.to_string(),
                                core: None,
                                va,
                                stream_pos,
                                source: e,
                            })?;
                        self.tlb.fill(va, w.pa.align_down(w.size), w.size);
                        self.walker_stats.record(&flatwalk_mmu::WalkTiming {
                            pa: w.pa,
                            size: w.size,
                            accesses: w.accesses,
                            latency: w.latency,
                        });
                        (w.pa, lookup.latency + w.latency)
                    }
                };
                let data = self
                    .hier
                    .access(pa, flatwalk_types::AccessKind::Data, OwnerId::SINGLE);
                stream_pos += 1;
                instructions += work + 1;
                let translation_stall = translation_latency.saturating_sub(1);
                let data_stall = data.latency.saturating_sub(l1_lat) as f64 * exposure;
                cycles_f += work as f64 + translation_stall as f64 + data_stall;
            }
        }

        let report = SimReport {
            workload: self.spec.name.to_string(),
            config: self.scheme.label(),
            instructions,
            cycles: cycles_f.round() as u64,
            walk: self.walker_stats,
            tlb: self.tlb.stats(),
            hier: self.hier.stats(),
            energy: self.hier.energy(&EnergyModel::default()),
            census: *self.space.census(),
            phase_flips: self.phase.flips(),
            pwc: Vec::new(),
            faults: flatwalk_faults::FaultStats::default(),
        };
        setup::record_run_time(start.elapsed());
        Ok(report)
    }
}
