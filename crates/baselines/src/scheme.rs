//! The common harness for comparison translation schemes (paper §2,
//! Fig. 9/13): each scheme replaces the radix page walk with its own
//! structure, but shares the TLBs, cache hierarchy, workloads, and
//! timing proxy with the main simulator.
//!
//! Translation *results* come from a functional oracle walk of the real
//! radix table (the address space is identical across schemes); each
//! scheme charges the *timing and memory traffic* its own structure
//! would generate. This keeps correctness orthogonal to cost modelling.

use std::sync::Arc;
use std::time::Instant;

use flatwalk_mem::{EnergyModel, MemoryHierarchy};
use flatwalk_mmu::WalkerStats;
use flatwalk_os::{AddressSpaceSpec, FrozenSpace};
use flatwalk_pt::{FrameStore, PageTable};
use flatwalk_sim::{engine, setup, SimOptions, SimReport};
use flatwalk_tlb::{PhaseDetector, TlbSystem};
use flatwalk_types::{OwnerId, PageSize, PhysAddr, VirtAddr};
use flatwalk_workloads::{AccessStream, WorkloadSpec};

/// Static context a scheme's walk may consult.
#[derive(Debug, Clone, Copy)]
pub struct WalkCtx<'a> {
    /// Page-table contents of the oracle radix table.
    pub store: &'a FrameStore,
    /// The oracle radix table.
    pub table: &'a PageTable,
}

/// Cost and result of one scheme-specific translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeWalk {
    /// Translated physical address (offset included).
    pub pa: PhysAddr,
    /// Translation granularity (for the TLB fill).
    pub size: PageSize,
    /// Cycles the translation took.
    pub latency: u64,
    /// Memory-system accesses it performed.
    pub accesses: u64,
}

/// A comparison translation scheme.
pub trait Scheme {
    /// Label used in reports ("ECH", "ASAP", "CSALT", "POM_TLB").
    fn label(&self) -> &'static str;

    /// Performs the translation after an L1/L2 TLB miss. Returns a
    /// [`WalkError`](flatwalk_pt::WalkError) for an unmapped or
    /// malformed translation instead of panicking, so the grid runner
    /// can isolate the failing cell.
    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError>;

    /// Whether this scheme biases the cache replacement policy toward
    /// its translation structures (CSALT does).
    fn wants_priority(&self) -> bool {
        false
    }

    /// Reacts to a context switch. The default flushes nothing — which
    /// is correct for POM_TLB/CSALT (the in-DRAM TLB survives switches,
    /// their core advantage); schemes with per-process on-chip state
    /// override it.
    fn context_switch(&mut self) {}
}

/// Runs a workload under a comparison scheme, with the same engine and
/// timing proxy as [`flatwalk_sim::NativeSimulation`].
pub struct SchemeSimulation<S: Scheme> {
    spec: WorkloadSpec,
    opts: Arc<SimOptions>,
    space: Arc<FrozenSpace>,
    tlb: TlbSystem,
    scheme: S,
    hier: MemoryHierarchy,
    stream: AccessStream,
    phase: PhaseDetector,
    walker_stats: WalkerStats,
}

impl<S: Scheme> SchemeSimulation<S> {
    /// Builds the (conventional 4-level) address space and the scheme.
    /// The space and stream prefix come from the shared setup cache
    /// ([`flatwalk_sim::setup`]): every comparison scheme walks the
    /// same oracle table, so one frozen snapshot serves them all.
    ///
    /// # Panics
    ///
    /// Panics if the address space cannot be built.
    pub fn build(spec: WorkloadSpec, scheme: S, opts: &SimOptions) -> Self {
        let start = Instant::now();
        let opts = Arc::new(opts.clone());
        let spec = spec.scaled_down(opts.footprint_divisor);
        let space_spec =
            AddressSpaceSpec::new(flatwalk_pt::Layout::conventional4(), spec.footprint)
                .with_scenario(opts.scenario)
                .with_nf_threshold(None);
        let space = setup::frozen_native_space(
            &space_spec,
            opts.phys_mem_bytes,
            opts.hierarchy.numa.signature(),
        );
        let tlb = TlbSystem::new(opts.tlb.clone());
        // Honor the same prioritization knobs as the native engine so
        // ablation sweeps compare like against like.
        let hier = MemoryHierarchy::new(opts.hierarchy.clone().with_priority_prob(opts.ptp_bias));
        let ops = opts.warmup_ops + opts.measure_ops;
        let stream = AccessStream::replay(
            spec.clone(),
            space.spec().base_va,
            setup::stream_offsets(&spec, ops),
        );
        let phase = PhaseDetector::new(opts.phase_window, opts.phase_threshold);
        let sim = SchemeSimulation {
            spec,
            opts,
            space,
            tlb,
            scheme,
            hier,
            stream,
            phase,
            walker_stats: WalkerStats::default(),
        };
        setup::record_setup_time(start.elapsed());
        sim
    }

    /// Runs warm-up then measurement; returns the report.
    ///
    /// # Panics
    ///
    /// Panics on an untranslatable access — use
    /// [`SchemeSimulation::try_run`] to get a structured
    /// [`SimError`](flatwalk_sim::SimError) instead.
    pub fn run(self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs warm-up then measurement; returns the report, or a
    /// [`SimError`](flatwalk_sim::SimError) identifying the exact
    /// access that failed to translate.
    pub fn try_run(mut self) -> Result<SimReport, flatwalk_sim::SimError> {
        let start = Instant::now();
        if flatwalk_obs::trace::any_enabled() {
            flatwalk_obs::trace::set_context(&format!(
                "{}/{}",
                self.spec.name,
                self.scheme.label()
            ));
        }

        // Comparison schemes run the exact same generic engine loop as
        // the native/virtualized/multicore drivers — the scheme only
        // supplies the translation half of a span. Schemes model no
        // live page-table mutations, so the event schedule is empty
        // (a context switch flushes the TLB and notifies the scheme;
        // nothing ever calls shootdown).
        let mut backend = SchemeBackend {
            scheme: &mut self.scheme,
            tlb: &mut self.tlb,
            phase: &mut self.phase,
            walker_stats: &mut self.walker_stats,
            store: self.space.store(),
            table: self.space.table(),
        };
        let run = engine::EngineRun {
            scheme: backend.scheme.label(),
            workload: self.spec.name,
            core: None,
            work_per_access: self.spec.work_per_access,
            data_exposure: self.spec.data_exposure,
            l1_latency: self.opts.hierarchy.l1.latency,
            warmup_ops: self.opts.warmup_ops,
            measure_ops: self.opts.measure_ops,
            context_switch_interval: self.opts.context_switch_interval,
            events: &[],
        };
        let totals = engine::run_single(
            &mut backend,
            &mut self.hier,
            &mut self.stream,
            OwnerId::SINGLE,
            &run,
        )?;

        let report = SimReport {
            workload: self.spec.name.to_string(),
            config: self.scheme.label(),
            instructions: totals.instructions,
            cycles: totals.cycles.round() as u64,
            walk: self.walker_stats,
            tlb: self.tlb.stats(),
            hier: self.hier.stats(),
            energy: self.hier.energy(&EnergyModel::default()),
            census: *self.space.census(),
            phase_flips: self.phase.flips(),
            pwc: Vec::new(),
            faults: totals.faults,
        };
        setup::record_run_time(start.elapsed());
        Ok(report)
    }
}

/// The comparison-scheme instantiation of the generic engine backend:
/// shared TLB complex and phase detector, with the walk delegated to
/// the [`Scheme`]'s own cost model against the oracle radix table.
struct SchemeBackend<'a, S: Scheme> {
    scheme: &'a mut S,
    tlb: &'a mut TlbSystem,
    phase: &'a mut PhaseDetector,
    walker_stats: &'a mut WalkerStats,
    store: &'a FrameStore,
    table: &'a PageTable,
}

impl<S: Scheme> engine::EngineBackend for SchemeBackend<'_, S> {
    fn access_span(
        &mut self,
        hier: &mut MemoryHierarchy,
        vas: &[VirtAddr],
        owner: OwnerId,
        out: &mut Vec<flatwalk_mmu::AccessTiming>,
    ) -> Result<(), (usize, flatwalk_pt::WalkError)> {
        out.clear();
        out.reserve(vas.len());
        let wants_priority = self.scheme.wants_priority();
        let ctx = WalkCtx {
            store: self.store,
            table: self.table,
        };
        for (i, &va) in vas.iter().enumerate() {
            let lookup = self.tlb.lookup(va);
            if wants_priority {
                let active = self.phase.record(lookup.translation.is_none());
                hier.set_priority_phase(active);
            }
            let (pa, translation_latency, walked) = match lookup.translation {
                Some((frame, size)) => (frame.add(va.offset(size)), lookup.latency, false),
                None => {
                    let w = self
                        .scheme
                        .walk(&ctx, va, hier, owner)
                        .map_err(|e| (i, e))?;
                    self.tlb.fill(va, w.pa.align_down(w.size), w.size);
                    self.walker_stats.record(&flatwalk_mmu::WalkTiming {
                        pa: w.pa,
                        size: w.size,
                        accesses: w.accesses,
                        latency: w.latency,
                    });
                    (w.pa, lookup.latency + w.latency, true)
                }
            };
            let data = hier.access(pa, flatwalk_types::AccessKind::Data, owner);
            out.push(flatwalk_mmu::AccessTiming {
                translation_latency,
                data_latency: data.latency,
                walked,
                pa,
            });
        }
        Ok(())
    }

    fn context_switch(&mut self) {
        self.tlb.flush();
        self.scheme.context_switch();
    }

    fn reset_stats(&mut self) {
        self.phase.reset_flips();
        self.tlb.reset_stats();
        *self.walker_stats = WalkerStats::default();
    }
}
