//! Mitosis — per-node page-table replication (Achermann et al.,
//! ASPLOS 2020).
//!
//! On a multi-node machine a page walk's steps land wherever the OS
//! happened to allocate the page-table nodes — interleaved across
//! nodes, half of every walk is remote and pays the interconnect hop
//! penalty on top of DRAM. Mitosis eagerly replicates the page table on
//! every node and services each walk from the *local* replica, making
//! every walk step node-local at the cost of keeping the replicas
//! coherent.
//!
//! The model: with `replicate` on, every walk step's entry address is
//! pinned to the walking core's node ([`flatwalk_mem::pin_to_node`]),
//! so the home-node resolution in the DRAM model sees a local replica
//! line; the first touch of each page-table line additionally charges
//! (nodes − 1) replica-maintenance writes through
//! [`MemoryHierarchy::dram_write`] — off-chip traffic that keeps the
//! other copies coherent without perturbing this core's caches. With
//! `replicate` off the scheme is the "NUMA-Base" comparison column:
//! identical walks against the unreplicated table, remote steps paying
//! full hop penalties.

use std::collections::HashSet;

use flatwalk_mem::{pin_to_node, MemoryHierarchy, NumaTopology};
use flatwalk_pt::{resolve, NodeShape};
use flatwalk_tlb::{Pwc, PwcConfig};
use flatwalk_types::{AccessKind, OwnerId, VirtAddr};

use crate::{Scheme, SchemeWalk, WalkCtx};

/// Behavioural model of per-node page-table replication.
#[derive(Debug, Clone)]
pub struct MitosisScheme {
    topology: NumaTopology,
    /// The node this core (and its local replica) lives on.
    node: u32,
    replicate: bool,
    /// Fallback radix walker state.
    pwc: Pwc,
    /// Page-table lines already replicated (first touch pays the
    /// replica-maintenance writes).
    replicated_lines: HashSet<u64>,
    /// Walk steps served by this core's node.
    pub local_steps: u64,
    /// Walk steps served by a remote node.
    pub remote_steps: u64,
    /// Replica-maintenance DRAM writes charged so far.
    pub replica_writes: u64,
}

impl MitosisScheme {
    /// A Mitosis walker on `topology`, walking from node 0. `replicate`
    /// off gives the NUMA-Base comparison column.
    pub fn new(topology: NumaTopology, replicate: bool, pwc: PwcConfig) -> Self {
        MitosisScheme {
            topology,
            node: 0,
            replicate,
            pwc: Pwc::new(pwc),
            replicated_lines: HashSet::new(),
            local_steps: 0,
            remote_steps: 0,
            replica_writes: 0,
        }
    }

    /// Places the walking core (and its local replica) on `node`.
    pub fn with_node(mut self, node: u32) -> Self {
        self.node = node % self.topology.node_count().max(1);
        self
    }
}

impl Scheme for MitosisScheme {
    fn label(&self) -> &'static str {
        if self.replicate {
            "Mitosis"
        } else {
            "NUMA-Base"
        }
    }

    fn context_switch(&mut self) {
        self.pwc.flush();
    }

    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError> {
        let oracle = resolve(ctx.store, ctx.table, va)?;

        // Conventional radix walk, PSC-accelerated, against either the
        // local replica (entries pinned to our node) or the
        // OS-interleaved table.
        let cum = oracle.steps.cum_index_bits();
        let mut latency = self.pwc.latency();
        let mut accesses = 0u64;
        let mut first_step = 0usize;
        if let Some(hit) = self.pwc.lookup(va) {
            if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                if i + 1 < oracle.steps.len() {
                    first_step = i + 1;
                }
            }
        }
        for step in &oracle.steps[first_step..] {
            let entry_pa = if self.replicate {
                pin_to_node(step.entry_pa, self.node)
            } else {
                step.entry_pa
            };
            if self.topology.home_node(entry_pa) == self.node {
                self.local_steps += 1;
            } else {
                self.remote_steps += 1;
            }
            let out = hier.access(entry_pa, AccessKind::PageTable, owner);
            latency += out.latency;
            accesses += 1;

            // First touch of a page-table line under replication pays
            // the maintenance writes that keep the other (nodes − 1)
            // replicas coherent: direct DRAM traffic, no cache fills.
            // The OS performs these off the walk's critical path (at
            // table-update time), so they count as DRAM/NUMA traffic
            // and energy but not as walk latency or walk accesses.
            if self.replicate && self.replicated_lines.insert(step.entry_pa.line()) {
                for n in 0..self.topology.node_count() {
                    if n == self.node {
                        continue;
                    }
                    hier.dram_write(pin_to_node(step.entry_pa, n), AccessKind::PageTable);
                    self.replica_writes += 1;
                }
            }
        }
        for i in first_step..oracle.steps.len().saturating_sub(1) {
            let next = &oracle.steps[i + 1];
            self.pwc.insert(
                va,
                cum[i],
                next.node_base,
                NodeShape::from_depth(next.depth).expect("valid step"),
            );
        }

        Ok(SchemeWalk {
            pa: oracle.pa,
            size: oracle.size,
            latency,
            accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
    use flatwalk_types::{PageSize, PhysAddr};

    fn oracle() -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        for p in 0..256u64 {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x5000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, m)
    }

    fn two_node_hier(topo: &NumaTopology) -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::server().with_numa(topo.clone()))
    }

    /// Mitosis's reason to exist: replication strictly reduces remote
    /// walk steps on a multi-node machine (the ISSUE's property test).
    #[test]
    fn replication_strictly_reduces_remote_walk_steps() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        // Fine interleave so page-table lines spread across both nodes.
        let topo = NumaTopology::nodes(2).with_interleave_shift(12);
        let vas: Vec<VirtAddr> = (0..256u64)
            .map(|p| VirtAddr::new(0x5000_0000 + p * 4096))
            .collect();

        let mut base = MitosisScheme::new(topo.clone(), false, PwcConfig::server());
        let mut hier = two_node_hier(&topo);
        for &va in &vas {
            base.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        }

        let mut mitosis = MitosisScheme::new(topo.clone(), true, PwcConfig::server());
        let mut hier = two_node_hier(&topo);
        for &va in &vas {
            mitosis.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        }

        assert!(
            base.remote_steps > 0,
            "interleaved table must produce remote steps"
        );
        assert_eq!(
            mitosis.remote_steps, 0,
            "every replicated walk step is local"
        );
        assert!(mitosis.local_steps >= base.local_steps);
        assert!(mitosis.remote_steps < base.remote_steps, "strict reduction");
    }

    #[test]
    fn replication_cost_charged_once_per_line() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let topo = NumaTopology::nodes(4);
        let mut s = MitosisScheme::new(topo.clone(), true, PwcConfig::server());
        let mut hier = two_node_hier(&topo);
        let va = VirtAddr::new(0x5000_3000);
        s.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        let after_first = s.replica_writes;
        assert!(
            after_first >= 3,
            "each fresh line pays (nodes-1) writes, got {after_first}"
        );
        s.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(s.replica_writes, after_first, "no re-charge on re-walks");
    }

    #[test]
    fn labels_distinguish_columns() {
        let topo = NumaTopology::nodes(2);
        assert_eq!(
            MitosisScheme::new(topo.clone(), true, PwcConfig::server()).label(),
            "Mitosis"
        );
        assert_eq!(
            MitosisScheme::new(topo, false, PwcConfig::server()).label(),
            "NUMA-Base"
        );
    }
}
