//! POM_TLB — a very large part-of-memory TLB (Ryoo et al., ISCA 2017)
//! and CSALT, its context-switch-aware cache-prioritization extension
//! (Marathe et al., MICRO 2017). Paper §2, Fig. 9/13.
//!
//! POM_TLB reserves a contiguous DRAM region at boot as a giant
//! set-associative TLB. A translation that misses the on-chip TLBs
//! makes a *single* memory access into that region (the line is
//! cacheable); only a POM-TLB miss falls back to a conventional radix
//! walk. CSALT adds replacement-policy bias so the DRAM-TLB's lines
//! survive in the caches.

use flatwalk_mem::MemoryHierarchy;
use flatwalk_pt::{resolve, NodeShape};
use flatwalk_tlb::{Pwc, PwcConfig};
use flatwalk_types::{AccessKind, OwnerId, PhysAddr, VirtAddr};

use crate::{Scheme, SchemeWalk, WalkCtx};

/// Behavioural model of the in-DRAM TLB (optionally with CSALT's cache
/// prioritization).
#[derive(Debug, Clone)]
pub struct PomTlbScheme {
    label: &'static str,
    base: u64,
    sets: u64,
    ways: usize,
    /// Directory of resident translations: per set, (vpn, stamp).
    dir: Vec<Vec<(u64, u64)>>,
    clock: u64,
    /// Fallback radix walker state.
    pwc: Pwc,
    csalt: bool,
    /// Statistics: hits/misses in the DRAM TLB.
    pub dram_tlb_hits: u64,
    /// DRAM-TLB misses (conventional walks taken).
    pub dram_tlb_misses: u64,
}

impl PomTlbScheme {
    /// A POM_TLB covering `bytes` of reserved DRAM (the papers use
    /// 16–64 MB), 4-way associative, 4 entries (16 B) per 64 B line.
    pub fn new(bytes: u64, pwc: PwcConfig) -> Self {
        let lines = (bytes / 64).next_power_of_two().max(64);
        let ways = 4;
        // One line holds one set's 4 x 16 B entries.
        let sets = lines;
        PomTlbScheme {
            label: "POM_TLB",
            base: 0x80_0000_0000,
            sets,
            ways,
            dir: vec![Vec::new(); sets as usize],
            clock: 0,
            pwc: Pwc::new(pwc),
            csalt: false,
            dram_tlb_hits: 0,
            dram_tlb_misses: 0,
        }
    }

    /// Converts this POM_TLB into the CSALT configuration (adds cache
    /// prioritization of the DRAM-TLB lines).
    pub fn csalt(mut self) -> Self {
        self.label = "CSALT";
        self.csalt = true;
        self
    }

    fn set_of(&self, vpn: u64) -> u64 {
        vpn & (self.sets - 1)
    }

    fn line_of(&self, vpn: u64) -> PhysAddr {
        PhysAddr::new(self.base + self.set_of(vpn) * 64)
    }

    /// Probes the directory; fills on miss. Returns whether it hit.
    fn probe_dir(&mut self, vpn: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(vpn) as usize;
        let ways = self.ways;
        let entries = &mut self.dir[set];
        if let Some(e) = entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = clock;
            return true;
        }
        if entries.len() >= ways {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            entries.swap_remove(victim);
        }
        entries.push((vpn, clock));
        false
    }
}

impl Scheme for PomTlbScheme {
    fn label(&self) -> &'static str {
        self.label
    }

    fn wants_priority(&self) -> bool {
        self.csalt
    }

    fn context_switch(&mut self) {
        // Only the on-chip fallback PSC flushes; the in-DRAM TLB (and
        // its cached lines) survive — POM_TLB/CSALT's selling point.
        self.pwc.flush();
    }

    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError> {
        let oracle = resolve(ctx.store, ctx.table, va)?;
        let vpn = va.raw() >> 12;

        // One access into the in-DRAM TLB (cacheable).
        let line = self.line_of(vpn);
        let out = hier.access(line, AccessKind::PageTable, owner);
        let mut latency = out.latency;
        let mut accesses = 1u64;

        if self.probe_dir(vpn) {
            self.dram_tlb_hits += 1;
        } else {
            self.dram_tlb_misses += 1;
            // Conventional radix walk, PWC-accelerated.
            let cum = oracle.steps.cum_index_bits();
            latency += self.pwc.latency();
            let mut first_step = 0usize;
            if let Some(hit) = self.pwc.lookup(va) {
                if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                    if i + 1 < oracle.steps.len() {
                        first_step = i + 1;
                    }
                }
            }
            for step in &oracle.steps[first_step..] {
                let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
                latency += out.latency;
                accesses += 1;
            }
            for i in first_step..oracle.steps.len().saturating_sub(1) {
                let next = &oracle.steps[i + 1];
                self.pwc.insert(
                    va,
                    cum[i],
                    next.node_base,
                    NodeShape::from_depth(next.depth).expect("valid step"),
                );
            }
            // Install into the DRAM TLB (write to the same line — it is
            // already cached from the probe; no extra traffic charged).
        }

        Ok(SchemeWalk {
            pa: oracle.pa,
            size: oracle.size,
            latency,
            accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
    use flatwalk_types::PageSize;

    fn oracle() -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        for p in 0..64u64 {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x5000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, m)
    }

    #[test]
    fn cold_miss_walks_then_hot_hit_is_single_access() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut pom = PomTlbScheme::new(16 << 20, PwcConfig::server());
        let va = VirtAddr::new(0x5000_3000);
        let cold = pom.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert!(cold.accesses >= 5, "probe + 4-level walk");
        assert_eq!(pom.dram_tlb_misses, 1);

        let hot = pom.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(hot.accesses, 1, "single cached DRAM-TLB access");
        assert_eq!(hot.latency, hier.config().l1.latency);
        assert_eq!(pom.dram_tlb_hits, 1);
        assert_eq!(hot.pa, cold.pa);
    }

    #[test]
    fn set_associative_eviction() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        // Tiny POM_TLB: 64 lines x 4 ways.
        let mut pom = PomTlbScheme::new(64 * 64, PwcConfig::server());
        // Walk 5 VAs that collide in set 0 … vpn multiples of 64.
        // Our oracle only maps 64 pages, so reuse within it: vpn stride
        // equals the set count → all map to the same set.
        let vas: Vec<VirtAddr> = (0..5u64)
            .map(|i| VirtAddr::new(0x5000_0000 + i * 64 * 4096))
            .collect();
        // Only the first VA is mapped in the oracle; walk it and 4
        // synthetic collisions via direct directory probes instead.
        pom.walk(&ctx, vas[0], &mut hier, OwnerId::SINGLE).unwrap();
        for i in 1..5u64 {
            pom.probe_dir((0x5000_0000u64 >> 12) + i * 64);
        }
        // The original vpn was LRU → evicted → next walk misses again.
        pom.walk(&ctx, vas[0], &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(pom.dram_tlb_misses, 2);
    }

    #[test]
    fn csalt_wants_priority() {
        let pom = PomTlbScheme::new(16 << 20, PwcConfig::server());
        assert!(!pom.wants_priority());
        assert_eq!(pom.label(), "POM_TLB");
        let csalt = pom.csalt();
        assert!(csalt.wants_priority());
        assert_eq!(csalt.label(), "CSALT");
    }
}
