//! Victima — TLB entries spilled into the L2 cache (Kanellopoulos et
//! al., MICRO 2023).
//!
//! Victima observes that L2 capacity is chronically underutilized for
//! translation-intensive workloads and repurposes ordinary L2 lines as
//! a large victim TLB: on an L2-TLB miss it probes a *cache-resident*
//! TLB entry (one line in the L2, no dedicated SRAM), and only a probe
//! miss falls back to a conventional radix walk. A PTW-cost predictor
//! gates insertion — entries are installed only for translations whose
//! walk was expensive, so cheap walks never pollute the L2.
//!
//! The model: TLB-entry lines live at synthetic physical addresses
//! (distinct from POM_TLB's reserved region) and are probed/installed
//! *directly in the L2* via [`MemoryHierarchy::probe_l2_resident`] /
//! [`MemoryHierarchy::install_l2_resident`] — no L1 allocation, no
//! lower-level fill traffic, matching the paper's L2-only placement. A
//! software directory tracks which VPNs have a live entry; an entry
//! whose line was evicted from the L2 by ordinary traffic is dead, as
//! in hardware. Installed lines carry page-table replacement priority
//! (the scheme leans on our PTP bias hooks the way Victima leans on its
//! own replacement hints).

use flatwalk_mem::MemoryHierarchy;
use flatwalk_pt::{resolve, NodeShape};
use flatwalk_tlb::{Pwc, PwcConfig};
use flatwalk_types::{AccessKind, OwnerId, PhysAddr, VirtAddr};

use crate::{Scheme, SchemeWalk, WalkCtx};

/// Synthetic base address of the cache-resident TLB-entry lines; keeps
/// them disjoint from data, page-table, and POM_TLB (0x80_0000_0000)
/// traffic.
const VICTIMA_BASE: u64 = 0x90_0000_0000;

/// Behavioural model of Victima's L2-resident TLB.
#[derive(Debug, Clone)]
pub struct VictimaScheme {
    /// Line-granular directory: per set, (vpn, stamp) pairs.
    dir: Vec<Vec<(u64, u64)>>,
    sets: u64,
    ways: usize,
    clock: u64,
    /// Fallback radix walker state.
    pwc: Pwc,
    /// PTW-cost predictor threshold: walks cheaper than this many
    /// cycles are not worth an L2 line.
    cost_threshold: u64,
    /// Probes answered by a live L2-resident entry.
    pub l2_entry_hits: u64,
    /// Probes that fell back to a radix walk.
    pub l2_entry_misses: u64,
    /// Entries installed into the L2 (walks above the cost threshold).
    pub installs: u64,
}

impl VictimaScheme {
    /// A Victima directory sized for `entries` translations (the paper
    /// evaluates up to 64K entries; 8 entries share a 64 B line's set),
    /// walking with the given PSC configuration on probe misses.
    pub fn new(entries: u64, pwc: PwcConfig) -> Self {
        let ways = 8;
        let sets = (entries / ways as u64).next_power_of_two().max(64);
        VictimaScheme {
            dir: vec![Vec::new(); sets as usize],
            sets,
            ways,
            clock: 0,
            pwc: Pwc::new(pwc),
            cost_threshold: 0,
            l2_entry_hits: 0,
            l2_entry_misses: 0,
            installs: 0,
        }
    }

    /// Sets the PTW-cost predictor threshold (cycles a walk must cost
    /// before its translation earns an L2 line). The default of 0
    /// installs every walked translation.
    pub fn with_cost_threshold(mut self, cycles: u64) -> Self {
        self.cost_threshold = cycles;
        self
    }

    fn set_of(&self, vpn: u64) -> u64 {
        vpn & (self.sets - 1)
    }

    fn line_of(&self, vpn: u64) -> PhysAddr {
        PhysAddr::new(VICTIMA_BASE + self.set_of(vpn) * 64)
    }

    /// Whether the directory holds a live entry for `vpn` (refreshes
    /// its stamp when it does).
    fn dir_probe(&mut self, vpn: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(vpn) as usize;
        if let Some(e) = self.dir[set].iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = clock;
            return true;
        }
        false
    }

    /// Records `vpn` in the directory (LRU within its set).
    fn dir_insert(&mut self, vpn: u64) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(vpn) as usize;
        let entries = &mut self.dir[set];
        if let Some(e) = entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = clock;
            return;
        }
        if entries.len() >= self.ways {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            entries.swap_remove(victim);
        }
        entries.push((vpn, clock));
    }
}

impl Scheme for VictimaScheme {
    fn label(&self) -> &'static str {
        "Victima"
    }

    fn wants_priority(&self) -> bool {
        // Victima's replacement hints keep TLB-entry lines alive in the
        // L2; our PTP bias machinery plays that role.
        true
    }

    fn context_switch(&mut self) {
        // The L2-resident entries are tagged (they survive switches,
        // like any cached page-table line); only the PSC flushes.
        self.pwc.flush();
    }

    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError> {
        let oracle = resolve(ctx.store, ctx.table, va)?;
        let vpn = va.raw() >> 12;
        let line = self.line_of(vpn);

        // L2-only probe for the cache-resident entry. The entry is live
        // only if the directory knows the VPN *and* its line is still
        // in the L2 (ordinary traffic may have evicted it).
        if self.dir_probe(vpn) {
            if let Some(latency) = hier.probe_l2_resident(line, owner) {
                self.l2_entry_hits += 1;
                return Ok(SchemeWalk {
                    pa: oracle.pa,
                    size: oracle.size,
                    latency,
                    accesses: 1,
                });
            }
        }
        self.l2_entry_misses += 1;

        // Conventional radix walk, PSC-accelerated (the probe itself
        // cost one L2 lookup).
        let cum = oracle.steps.cum_index_bits();
        let mut latency = hier.config().l2.latency + self.pwc.latency();
        let mut accesses = 1u64;
        let mut first_step = 0usize;
        if let Some(hit) = self.pwc.lookup(va) {
            if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                if i + 1 < oracle.steps.len() {
                    first_step = i + 1;
                }
            }
        }
        for step in &oracle.steps[first_step..] {
            let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
            latency += out.latency;
            accesses += 1;
        }
        for i in first_step..oracle.steps.len().saturating_sub(1) {
            let next = &oracle.steps[i + 1];
            self.pwc.insert(
                va,
                cum[i],
                next.node_base,
                NodeShape::from_depth(next.depth).expect("valid step"),
            );
        }

        // PTW-cost predictor: only walks worth avoiding earn a line.
        if latency >= self.cost_threshold {
            self.dir_insert(vpn);
            hier.install_l2_resident(line, owner);
            self.installs += 1;
        }

        Ok(SchemeWalk {
            pa: oracle.pa,
            size: oracle.size,
            latency,
            accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
    use flatwalk_types::PageSize;

    fn oracle() -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        for p in 0..64u64 {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x5000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, m)
    }

    #[test]
    fn cold_walk_installs_then_hits_at_l2_latency() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut v = VictimaScheme::new(1 << 10, PwcConfig::server());
        let va = VirtAddr::new(0x5000_3000);

        let cold = v.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert!(cold.accesses >= 5, "probe + 4-level walk");
        assert_eq!(v.l2_entry_misses, 1);
        assert_eq!(v.installs, 1);

        let hot = v.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(hot.accesses, 1, "single L2-resident entry probe");
        assert_eq!(hot.latency, hier.config().l2.latency);
        assert_eq!(v.l2_entry_hits, 1);
        assert_eq!(hot.pa, cold.pa);
    }

    #[test]
    fn cost_threshold_gates_installs() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        // An impossibly high threshold: nothing is ever installed.
        let mut v = VictimaScheme::new(1 << 10, PwcConfig::server()).with_cost_threshold(u64::MAX);
        let va = VirtAddr::new(0x5000_3000);
        v.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        v.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(v.installs, 0);
        assert_eq!(v.l2_entry_hits, 0);
        assert_eq!(v.l2_entry_misses, 2, "every probe falls back to a walk");
    }

    #[test]
    fn entry_dies_when_its_line_is_evicted() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        // Tiny L2 so ordinary traffic evicts the resident entry.
        let mut cfg = HierarchyConfig::server();
        cfg.l2 = flatwalk_mem::CacheConfig::new("L2", 4 << 10, 4, 12).with_pt_priority(true);
        let mut hier = MemoryHierarchy::new(cfg);
        let mut v = VictimaScheme::new(1 << 10, PwcConfig::server());
        let va = VirtAddr::new(0x5000_3000);
        v.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        // Blast the L2 with data lines (64 sets x 4 ways = 256 lines).
        for i in 0..1024u64 {
            hier.access(
                PhysAddr::new(0x2000_0000 + i * 64),
                AccessKind::Data,
                OwnerId::SINGLE,
            );
        }
        let again = v.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert!(again.accesses > 1, "evicted entry forces a re-walk");
        assert_eq!(v.l2_entry_misses, 2);
    }
}
