//! Elastic Cuckoo Hashing page tables (Skarlatos et al., ASPLOS 2020;
//! paper §2, Fig. 9/13).
//!
//! ECH replaces the radix tree with d-ary cuckoo hash tables so a
//! translation needs no pointer chasing: the *d* candidate locations are
//! probed **in parallel**. The cost is issuing d (3 for a 4 KB-only
//! table; 4 when a 2 MB size class exists) concurrent memory accesses
//! per walk — latency is the max of the probes, but cache/DRAM traffic
//! and energy scale with their sum, which is how the paper explains
//! ECH's higher cache (+32 %) and DRAM (+14 %) energy and its net
//! performance loss at 0 % large pages.

use flatwalk_mem::MemoryHierarchy;
use flatwalk_pt::resolve;
use flatwalk_types::rng::SplitMix64;
use flatwalk_types::{AccessKind, OwnerId, VirtAddr};

use crate::{Scheme, SchemeWalk, WalkCtx};

/// Behavioural model of an elastic cuckoo page table.
#[derive(Debug, Clone)]
pub struct EchScheme {
    /// Number of cuckoo ways probed for the 4 KB size class.
    ways: usize,
    /// Whether a separate 2 MB size-class table is also probed
    /// (the evaluation's 50 %/100 % LP scenarios).
    probe_2m: bool,
    /// Base physical address of each way's array.
    way_bases: Vec<u64>,
    /// Buckets per way (power of two).
    buckets: u64,
    hash_seeds: Vec<u64>,
}

impl EchScheme {
    /// Builds an ECH table sized for `footprint` bytes of 4 KB
    /// mappings with the canonical d = 3 ways at ~75 % occupancy.
    ///
    /// `probe_2m` adds the fourth concurrent probe used when the
    /// address space mixes 2 MB pages.
    pub fn new(footprint: u64, probe_2m: bool) -> Self {
        let pages = (footprint / 4096).max(1);
        // 8 entries of 8 B per 64 B bucket line; 1.33x headroom split
        // across 3 ways.
        let buckets = ((pages * 4 / 3) / 8).next_power_of_two().max(64);
        let ways = 3;
        // Place the ways in a reserved physical region far above the
        // data (the paper's OS must allocate these as large contiguous
        // blocks — the implementability critique of §2).
        let way_stride = buckets * 64;
        let base = 0x40_0000_0000u64;
        EchScheme {
            ways,
            probe_2m,
            way_bases: (0..ways as u64).map(|i| base + i * way_stride).collect(),
            buckets,
            hash_seeds: (0..ways as u64 + 1)
                .map(|i| 0x9E37 ^ (i * 0xABCD_EF01))
                .collect(),
        }
    }

    fn bucket_line(&self, way: usize, vpn: u64) -> u64 {
        let mut h = SplitMix64::new(vpn ^ self.hash_seeds[way]);
        self.way_bases[way] + (h.next_u64() & (self.buckets - 1)) * 64
    }
}

impl Scheme for EchScheme {
    fn label(&self) -> &'static str {
        "ECH"
    }

    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError> {
        // The oracle provides the actual translation.
        let oracle = resolve(ctx.store, ctx.table, va)?;

        let vpn = va.raw() >> 12;
        let mut max_latency = 0u64;
        let mut accesses = 0u64;
        for way in 0..self.ways {
            let line = self.bucket_line(way, vpn);
            let out = hier.access(
                flatwalk_types::PhysAddr::new(line),
                AccessKind::PageTable,
                owner,
            );
            max_latency = max_latency.max(out.latency);
            accesses += 1;
        }
        if self.probe_2m {
            let vpn_2m = va.raw() >> 21;
            let line = self.bucket_line(0, vpn_2m ^ 0x5555_5555);
            let out = hier.access(
                flatwalk_types::PhysAddr::new(line),
                AccessKind::PageTable,
                owner,
            );
            max_latency = max_latency.max(out.latency);
            accesses += 1;
        }

        Ok(SchemeWalk {
            pa: oracle.pa,
            size: oracle.size,
            latency: max_latency,
            accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
    use flatwalk_types::{PageSize, PhysAddr};

    fn oracle() -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        for p in 0..16u64 {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x5000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, m)
    }

    #[test]
    fn three_parallel_probes_for_4k_only() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut ech = EchScheme::new(64 << 20, false);
        let va = VirtAddr::new(0x5000_2000);
        let w = ech.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(w.accesses, 3);
        assert_eq!(w.pa.raw(), 0x9_0000_2000);
        // Cold probes all go to DRAM; the *parallel* latency is one
        // DRAM round trip, not three.
        assert_eq!(w.latency, 200);
        // A repeat walk hits the cached bucket lines.
        let w2 = ech.walk(&ctx, va, &mut hier, OwnerId::SINGLE).unwrap();
        assert_eq!(w2.latency, hier.config().l1.latency);
    }

    #[test]
    fn mixed_page_sizes_probe_four_ways() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut ech = EchScheme::new(64 << 20, true);
        let w = ech
            .walk(&ctx, VirtAddr::new(0x5000_0000), &mut hier, OwnerId::SINGLE)
            .unwrap();
        assert_eq!(w.accesses, 4);
    }

    #[test]
    fn distinct_pages_probe_distinct_buckets() {
        let ech = EchScheme::new(64 << 20, false);
        let a = ech.bucket_line(0, 100);
        let b = ech.bucket_line(0, 101);
        assert_ne!(a, b, "adjacent VPNs should not collide in way 0");
        let c = ech.bucket_line(1, 100);
        assert_ne!(a, c, "ways use independent hash functions/regions");
    }
}
