//! ASAP — prefetched address translation (Margaritov et al., MICRO
//! 2019; paper §2, Fig. 9/13).
//!
//! ASAP stores the lower page-table levels in flat, virtually indexed
//! arrays so the L2/L1 entry addresses can be *computed* (not chased)
//! as soon as a walk starts, and prefetched in parallel with the upper
//! levels. The paper's observations, which this model reproduces:
//!
//! * modern PWCs already skip most upper-level accesses, so there is
//!   little serial latency left to hide (ASAP gains only 1.7 %);
//! * the prefetches go through the cache hierarchy and the entries are
//!   then *re-accessed* by the walker, raising L1D traffic and energy
//!   (Fig. 13);
//! * prefetching requires physically contiguous table regions, which
//!   the OS cannot guarantee — [`AsapScheme::with_contiguity`] models
//!   partial availability (prefetching is disabled for the remainder).

use flatwalk_mem::MemoryHierarchy;
use flatwalk_pt::{resolve, NodeShape};
use flatwalk_tlb::{Pwc, PwcConfig};
use flatwalk_types::rng::SplitMix64;
use flatwalk_types::{AccessKind, OwnerId, VirtAddr};

use crate::{Scheme, SchemeWalk, WalkCtx};

/// Behavioural model of ASAP's prefetched walks.
#[derive(Debug, Clone)]
pub struct AsapScheme {
    pwc: Pwc,
    /// Fraction of the address space whose flat table arrays were
    /// successfully allocated contiguously (1.0 = ideal).
    contiguity: f64,
    rng: SplitMix64,
}

impl AsapScheme {
    /// ASAP with ideal (fully contiguous) flat table arrays.
    pub fn new(pwc: PwcConfig) -> Self {
        AsapScheme {
            pwc: Pwc::new(pwc),
            contiguity: 1.0,
            rng: SplitMix64::new(0xA5A9),
        }
    }

    /// Limits the fraction of walks that can use prefetching (the
    /// kernel could not allocate contiguous regions for the rest).
    pub fn with_contiguity(mut self, fraction: f64) -> Self {
        self.contiguity = fraction.clamp(0.0, 1.0);
        self
    }
}

impl Scheme for AsapScheme {
    fn label(&self) -> &'static str {
        "ASAP"
    }

    fn context_switch(&mut self) {
        self.pwc.flush();
    }

    fn walk(
        &mut self,
        ctx: &WalkCtx<'_>,
        va: VirtAddr,
        hier: &mut MemoryHierarchy,
        owner: OwnerId,
    ) -> Result<SchemeWalk, flatwalk_pt::WalkError> {
        let walk = resolve(ctx.store, ctx.table, va)?;
        let cum = walk.steps.cum_index_bits();

        let mut latency = self.pwc.latency();
        let mut first_step = 0usize;
        if let Some(hit) = self.pwc.lookup(va) {
            if let Some(i) = cum.iter().position(|&c| c == hit.prefix_bits) {
                if i + 1 < walk.steps.len() {
                    first_step = i + 1;
                }
            }
        }

        let prefetchable = self.rng.chance(self.contiguity);
        let mut accesses = 0u64;
        if prefetchable {
            // All remaining entry addresses are computed up front and
            // fetched in parallel; the walker then re-reads each
            // prefetched line from the L1 (extra traffic, hidden
            // latency).
            let mut max_latency = 0u64;
            for step in &walk.steps[first_step..] {
                let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
                max_latency = max_latency.max(out.latency);
                accesses += 1;
            }
            // Re-access of the prefetched entries (now L1-resident);
            // pipelined behind the prefetch, so it adds traffic but no
            // serial latency.
            for step in &walk.steps[first_step..] {
                let _ = hier.access(step.entry_pa, AccessKind::PageTable, owner);
                accesses += 1;
            }
            latency += max_latency;
        } else {
            // No contiguous arrays: ordinary serial walk.
            for step in &walk.steps[first_step..] {
                let out = hier.access(step.entry_pa, AccessKind::PageTable, owner);
                latency += out.latency;
                accesses += 1;
            }
        }

        // Train the PWC like a conventional walker.
        for i in first_step..walk.steps.len().saturating_sub(1) {
            let next = &walk.steps[i + 1];
            self.pwc.insert(
                va,
                cum[i],
                next.node_base,
                NodeShape::from_depth(next.depth).expect("valid step"),
            );
        }

        Ok(SchemeWalk {
            pa: walk.pa,
            size: walk.size,
            latency,
            accesses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flatwalk_mem::HierarchyConfig;
    use flatwalk_pt::{BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper};
    use flatwalk_types::{PageSize, PhysAddr};

    fn oracle() -> (FrameStore, Mapper) {
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut m = Mapper::new(
            &mut store,
            &mut alloc,
            Layout::conventional4(),
            &FlattenEverywhere,
        )
        .unwrap();
        for p in 0..512u64 {
            m.map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(0x5000_0000 + p * 4096),
                PhysAddr::new(0x9_0000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
        }
        (store, m)
    }

    #[test]
    fn parallel_prefetch_bounds_cold_latency_by_one_round_trip() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut asap = AsapScheme::new(PwcConfig::server());
        let w = asap
            .walk(&ctx, VirtAddr::new(0x5000_0000), &mut hier, OwnerId::SINGLE)
            .unwrap();
        // A cold 4-level walk serially would cost ~4x DRAM; ASAP pays
        // one DRAM latency (plus the PWC cycle).
        assert!(w.latency <= 201 + 4, "got {}", w.latency);
        // …but double the accesses (prefetch + re-access).
        assert_eq!(w.accesses, 8);
        assert_eq!(w.pa.raw(), 0x9_0000_0000);
    }

    #[test]
    fn zero_contiguity_degenerates_to_serial_walks() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut asap = AsapScheme::new(PwcConfig::server()).with_contiguity(0.0);
        let w = asap
            .walk(&ctx, VirtAddr::new(0x5000_0000), &mut hier, OwnerId::SINGLE)
            .unwrap();
        assert_eq!(w.accesses, 4, "no prefetch duplication");
        assert!(w.latency > 700, "serial cold walk pays every level");
    }

    #[test]
    fn pwc_still_skips_upper_levels() {
        let (store, m) = oracle();
        let ctx = WalkCtx {
            store: &store,
            table: m.table(),
        };
        let mut hier = MemoryHierarchy::new(HierarchyConfig::server());
        let mut asap = AsapScheme::new(PwcConfig::server());
        asap.walk(&ctx, VirtAddr::new(0x5000_0000), &mut hier, OwnerId::SINGLE)
            .unwrap();
        // Second page in the same 2 MB region: 27-bit hit → 1 entry,
        // prefetched + re-accessed = 2 accesses.
        let w = asap
            .walk(
                &ctx,
                VirtAddr::new(0x5000_0000 + 4096),
                &mut hier,
                OwnerId::SINGLE,
            )
            .unwrap();
        assert_eq!(w.accesses, 2);
    }
}
