//! Offline property-testing shim.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `proptest` crate cannot be fetched. This crate implements the
//! small slice of its API that the workspace's tests use — `proptest!`,
//! `prop_assert*!`, `prop_assume!`, `ProptestConfig::with_cases`, range /
//! tuple / `collection::vec` / `prop_map` strategies — on top of a
//! seeded SplitMix64 generator, so every run is deterministic.
//!
//! Deliberate simplifications versus the real crate: no shrinking (a
//! failing case panics with the raw assertion message), no persisted
//! failure regressions, and strategies are sampled uniformly.

use std::fmt;

/// Runner configuration. Only the `cases` knob is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another input.
    Reject(String),
}

impl TestCaseError {
    /// A falsified-property error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-input marker.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property falsified: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() bound must be non-zero");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: runs `case` until `cfg.cases` inputs are accepted,
/// panicking on the first falsified case. Seeds derive from the property
/// name so runs are reproducible and independent of execution order.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = seed_from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(cfg.cases).saturating_mul(20).max(64);
    while accepted < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest shim: property {name} rejected too many inputs \
             ({accepted}/{} accepted after {attempts} attempts)",
            cfg.cases
        );
        let mut rng = TestRng::new(base ^ attempts.wrapping_mul(0xA076_1D64_78BD_642F));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} falsified on accepted case {accepted} (attempt {attempts}): {msg}")
            }
        }
    }
}

/// FNV-1a over the property name: a stable per-property seed.
fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests. Mirrors the real crate's surface syntax:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies via `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                result
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Rejects the current input (the runner draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_across_runs() {
        let strat = crate::collection::vec(0u64..100, 1..10);
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges honour their bounds; assume / assert plumbing works.
        #[test]
        fn range_strategy_in_bounds(x in 5u64..50, pair in (0u8..3, 1usize..4)) {
            prop_assume!(x != 49);
            prop_assert!((5..50).contains(&x), "x = {x}");
            prop_assert_eq!(pair.0 as usize + pair.1, pair.1 + pair.0 as usize);
            prop_assert_ne!(pair.1, 0);
        }

        /// prop_map composes.
        #[test]
        fn map_applies(v in (0u64..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(v % 2, 0);
        }
    }
}
