//! Offline benchmarking shim.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `criterion` crate cannot be fetched. This crate implements the
//! subset of its API used by `crates/bench/benches/hot_paths.rs`:
//! `Criterion`, `benchmark_group`, `bench_function`, `sample_size`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated until one batch takes
//! at least ~2 ms, then `sample_size` batches are timed and the median,
//! minimum, and maximum per-iteration times are reported on one line:
//!
//! ```text
//! group/name              time: [min 123.4 ns  median 125.0 ns  max 130.1 ns]
//! ```
//!
//! Under `cargo bench -- --test` (or `cargo test --benches`) each
//! benchmark body runs exactly once, as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times the routine
/// per invocation, so the variants are behaviourally identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per routine invocation.
    PerIteration,
    /// Small batches (shim: same as `PerIteration`).
    SmallInput,
    /// Large batches (shim: same as `PerIteration`).
    LargeInput,
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times and records the total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `setup` + `routine` `iters` times, timing only the routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    benches_run: usize,
}

impl Criterion {
    /// Builds a harness from the process arguments. Recognizes `--test`
    /// (run each body once) and a bare token as a name filter; other
    /// flags (`--bench`, cargo plumbing) are ignored.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            benches_run: 0,
        }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Prints the closing line (called by `criterion_main!`).
    pub fn final_summary(&self) {
        if self.test_mode {
            println!(
                "criterion shim: {} benchmark(s) smoke-tested",
                self.benches_run
            );
        } else {
            println!("criterion shim: {} benchmark(s) measured", self.benches_run);
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        self.criterion.benches_run += 1;

        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full} ... ok");
            return self;
        }

        // Calibrate: grow the iteration count until one batch is ≥ ~2 ms.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 28 {
                break;
            }
            iters = iters.saturating_mul(4);
        }

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        println!(
            "{full:<44} time: [min {}  median {}  max {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Formats a nanosecond figure with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 10);
    }

    #[test]
    fn bencher_iter_batched_counts() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
            },
            |()| runs += 1,
            BatchSize::PerIteration,
        );
        assert_eq!((setups, runs), (7, 7));
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with('s'));
    }
}
