//! Self-referencing (recursive) page tables and the glue sub-table
//! (paper §3.5, Fig. 5–7): how a Windows-style kernel reads its own
//! page-table nodes through the page table, and why flattened roots
//! need the embedded L4* glue table.
//!
//! ```sh
//! cargo run --release --example recursive_tables
//! ```

use flatwalk::pt::{
    resolve, BumpAllocator, FlattenEverywhere, FrameStore, Layout, Mapper, RecursiveScheme,
};
use flatwalk::types::{Level, PageSize, PhysAddr, VirtAddr};

fn main() {
    let data_va = VirtAddr::new(0x12_3456_7000);
    let data_pa = PhysAddr::new(0x77_0000_0000);

    for (title, layout) in [
        ("conventional 4-level table", Layout::conventional4()),
        ("flat L3+L2 table (Fig. 5)", Layout::flat_l3l2()),
        (
            "flat L4+L3 root + glue table (Fig. 6/7)",
            Layout::flat_l4l3(),
        ),
    ] {
        println!("=== {title} ===");
        let mut store = FrameStore::new();
        let mut alloc = BumpAllocator::new(0x1_0000_0000);
        let mut mapper = Mapper::new(&mut store, &mut alloc, layout, &FlattenEverywhere).unwrap();
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                data_va,
                data_pa,
                PageSize::Size4K,
            )
            .unwrap();

        // Install recursion at slot 510 (real kernels randomize this).
        let rec = RecursiveScheme::install(&mut store, mapper.table(), 510).unwrap();

        // The ordinary data walk, for reference.
        let walk = resolve(&store, mapper.table(), data_va).unwrap();
        println!("  data walk: {} steps → PA {}", walk.steps.len(), walk.pa);

        // Read the PTE that maps `data_va` *through the page table
        // itself*: synthesize the VA of the leaf node, walk it like any
        // other address, then index the returned page.
        let (l4, l3, l2, l1) = (
            data_va.index(Level::L4),
            data_va.index(Level::L3),
            data_va.index(Level::L2),
            data_va.index(Level::L1),
        );
        let leaf_va = rec.node_va(&[l4, l3, l2]);
        let node_walk = resolve(&store, mapper.table(), leaf_va).unwrap();
        let pte_pa = node_walk.frame_base().add(l1 as u64 * 8);
        let pte = store.read_pte(pte_pa);
        println!(
            "  recursive VA {leaf_va} → leaf node at {} (a {} translation)",
            node_walk.frame_base(),
            node_walk.size
        );
        println!(
            "  PTE[{l1}] read through the table: → {} (expected {})",
            pte.addr(),
            data_pa
        );
        assert_eq!(pte.addr(), data_pa);
        println!();
    }

    println!("With a flattened L4+L3 root, naive 18-bit recursion overshoots the");
    println!("address bits (Fig. 6 left). The glue sub-table (L4*) embedded in the");
    println!("2 MB root restores conventional 9-bit recursion steps — and also lets");
    println!("devices without flattening support traverse the table.");
}
