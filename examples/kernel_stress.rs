//! The §6.2 kernel stress experiment, as a runnable demo: how often do
//! the two 2 MB allocations of a flattened page table fail while a
//! kernel build hammers an oversubscribed machine?
//!
//! ```sh
//! cargo run --release --example kernel_stress
//! ```

use flatwalk::os::{kernel_build_stress, StressConfig};

fn main() {
    println!("Simulating `make -j100` on an oversubscribed box (paper §6.2):");
    println!("every compiler invocation needs two 2 MB blocks for its flattened");
    println!("page table; reclaim (swap) scatters holes; compaction tries to");
    println!("rescue; failures fall back to conventional 4 KB nodes.\n");

    println!(
        "{:>8} {:>12} {:>9} {:>14} {:>13} {:>12}",
        "oversub", "invocations", "failed", "failure rate", "paper rate", "swapped"
    );
    for (ovs, paper) in [(0.06, "0.5%"), (0.25, "—"), (0.50, "12%")] {
        let out = kernel_build_stress(&StressConfig {
            oversubscription: ovs,
            invocations: 1200,
            ..StressConfig::default()
        });
        println!(
            "{:>7.0}% {:>12} {:>9} {:>13.2}% {:>13} {:>12}",
            ovs * 100.0,
            out.invocations,
            out.invocations_with_failure,
            out.invocation_failure_rate() * 100.0,
            paper,
            out.reclaimed_pages,
        );
    }

    println!();
    println!("The graceful fallback (paper §3.2) absorbs every failure — which is");
    println!("why flattening is deployable where ECH-style schemes, that *require*");
    println!("large contiguous allocations, are not.");
}
