//! Record a workload's address trace to a file and replay it through
//! the simulator — the bridge for using *real* program traces
//! (converted to `FWTRACE1`) instead of the synthetic generators.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use flatwalk::sim::{NativeSimulation, SimOptions, TranslationConfig};
use flatwalk::workloads::{trace, AccessStream, WorkloadSpec};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("flatwalk-trace-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("xsbench.fwtrace");

    let mut opts = SimOptions::small_test();
    opts.warmup_ops = 5_000;
    opts.measure_ops = 30_000;

    // 1. Record the exact accesses the synthetic run will make.
    let spec = WorkloadSpec::xsbench().scaled_mib(128);
    let total = (opts.warmup_ops + opts.measure_ops) as usize;
    let n = trace::record(AccessStream::new(spec.clone(), 0), total, &path)?;
    println!("recorded {n} accesses to {}", path.display());

    // 2. Run both: generator vs. replayed file.
    let synthetic =
        NativeSimulation::build(spec, TranslationConfig::flattened_prioritized(), &opts).run();
    let replayed = NativeSimulation::build_with_stream(
        trace::load(&path, "xsbench-trace", 7, 0.75)?,
        TranslationConfig::flattened_prioritized(),
        &opts,
    )
    .run();

    println!(
        "\n{:<12} {:>8} {:>10} {:>10}",
        "source", "walks", "acc/walk", "p50 lat"
    );
    for r in [&synthetic, &replayed] {
        println!(
            "{:<12} {:>8} {:>10.2} {:>10}",
            r.workload,
            r.tlb.walks,
            r.walk.accesses_per_walk(),
            r.walk.latency_p50(),
        );
    }
    assert_eq!(synthetic.tlb.walks, replayed.tlb.walks);
    println!("\nreplay reproduces the generator exactly — swap in your own");
    println!("FWTRACE1 files to drive the simulator with real traces.");
    std::fs::remove_file(&path)?;
    Ok(())
}
