//! Dynamic flattening (paper §6.2, future work): promote a running
//! process' conventional page-table levels into flattened nodes without
//! remapping anything — allocate a 2 MB node, copy the entries of the
//! node pair into it, swing the parent pointer.
//!
//! ```sh
//! cargo run --release --example dynamic_promotion
//! ```

use flatwalk::os::BuddyAllocator;
use flatwalk::pt::{resolve, FlattenEverywhere, FrameStore, Layout, Mapper};
use flatwalk::types::{Level, PageSize, PhysAddr, VirtAddr};

fn main() {
    // A process that started life with a conventional 4-level table.
    let mut store = FrameStore::new();
    let mut alloc = BuddyAllocator::new(0, 1 << 30);
    let mut mapper = Mapper::new(
        &mut store,
        &mut alloc,
        Layout::conventional4(),
        &FlattenEverywhere,
    )
    .unwrap();

    let base = 0x40_0000_0000u64;
    let pages = 512u64;
    for p in 0..pages {
        mapper
            .map(
                &mut store,
                &mut alloc,
                &FlattenEverywhere,
                VirtAddr::new(base + p * 4096),
                PhysAddr::new(0x1000_0000 + p * 4096),
                PageSize::Size4K,
            )
            .unwrap();
    }

    let probe = VirtAddr::new(base + 200 * 4096 + 0x2a8);
    let show = |store: &FrameStore, mapper: &Mapper, stage: &str| {
        let w = resolve(store, mapper.table(), probe).unwrap();
        println!(
            "{stage:<28} walk = {} steps → {}   ({} flat / {} conventional nodes)",
            w.steps.len(),
            w.pa,
            mapper.census().flat2_nodes,
            mapper.census().conventional_nodes,
        );
        w.pa
    };

    println!("Promoting a live conventional table, one pair of levels at a time:\n");
    let pa0 = show(&store, &mapper, "conventional (L4,L3,L2,L1)");

    // The kernel decides the upper levels are worth merging…
    mapper
        .promote(&mut store, &mut alloc, probe, Level::L4)
        .unwrap();
    let pa1 = show(&store, &mapper, "after promote(L4+L3)");

    // …and later merges the leaf pair too.
    mapper
        .promote(&mut store, &mut alloc, probe, Level::L2)
        .unwrap();
    let pa2 = show(&store, &mapper, "after promote(L2+L1)");

    assert_eq!(pa0, pa1);
    assert_eq!(pa0, pa2);
    println!();
    println!("Two promotions took the walk from 4 indirections to 2 — with zero");
    println!("change to any translation. This is the §6.2 \"straight-forward to");
    println!("implement\" path: copy the child entries, update the parent pointer,");
    println!("release the old 4 KB nodes.");
}
