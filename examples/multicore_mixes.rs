//! Multiprogrammed multicore execution (paper §7.1, Table 2): four
//! cores share a 32 MB LLC; per-owner partition IDs stop one process'
//! data from evicting another's page table.
//!
//! ```sh
//! cargo run --release --example multicore_mixes
//! ```

use flatwalk::sim::{multicore_options, table2_mixes, MulticoreSimulation, TranslationConfig};

fn main() {
    let mut opts = multicore_options();
    opts.footprint_divisor = 16;
    opts.phys_mem_bytes = 8 << 30;
    opts.warmup_ops = 40_000;
    opts.measure_ops = 120_000;

    // Table 2's mix 8: one TLB-hostile random scanner next to three
    // better-behaved programs.
    let mix = table2_mixes().into_iter().find(|m| m.id == 8).unwrap();
    println!("mix {}: {}\n", mix.id, mix.describe());

    for config in [
        TranslationConfig::baseline(),
        TranslationConfig::flattened_prioritized(),
    ] {
        let report = MulticoreSimulation::build(&mix, config, &opts).run();
        println!("--- {} ---", report.config);
        println!(
            "{:<13} {:>9} {:>10} {:>10} {:>11}",
            "core/bench", "ipc", "acc/walk", "walk-lat", "L3 PT-miss"
        );
        for (i, core) in report.cores.iter().enumerate() {
            println!(
                "{i}: {:<10} {:>9.4} {:>10.2} {:>10.1} {:>10.1}%",
                core.workload,
                core.ipc(),
                core.walk.accesses_per_walk(),
                core.walk.latency_per_walk(),
                core.hier.l3.page_table.miss_ratio() * 100.0,
            );
        }
        println!();
    }

    println!("FPT+PTP helps every core: walks shrink to one access and that access");
    println!("stays resident in the shared LLC even while rand. streams through it.");
}
