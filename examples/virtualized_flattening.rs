//! Virtualized two-dimensional page walks (paper §4): how the nested
//! TLB, the guest PSC and the vPWC tame the naive 24-access walk, and
//! what flattening each dimension adds.
//!
//! ```sh
//! cargo run --release --example virtualized_flattening
//! ```

use flatwalk::sim::{SimOptions, VirtConfig, VirtualizedSimulation};
use flatwalk::workloads::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec::gups().scaled_mib(512);
    let mut opts = SimOptions::server();
    opts.warmup_ops = 80_000;
    opts.measure_ops = 250_000;
    opts.phys_mem_bytes = 4 << 30;

    println!("A guest translation must walk the guest table (gVA→gPA), and every");
    println!("guest-table access plus the final data address needs its own host");
    println!("walk (gPA→hPA): naively (4+1)x4 + 4 = 24 memory accesses.\n");

    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>9}",
        "config", "acc/walk", "walk-lat", "ipc", "speedup"
    );
    let mut base_ipc = 0.0;
    for cfg in VirtConfig::fig12_set() {
        let report = VirtualizedSimulation::build(spec.clone(), cfg, &opts).run();
        if report.config == "Base-2D" {
            base_ipc = report.ipc();
        }
        println!(
            "{:<12} {:>9.2} {:>10.1} {:>10.4} {:>+8.1}%",
            report.config,
            report.walk.accesses_per_walk(),
            report.walk.latency_per_walk(),
            report.ipc(),
            (report.ipc() / base_ipc - 1.0) * 100.0,
        );
    }

    println!();
    println!("GF (guest flattening) shortens every guest row of the 2-D walk; HF");
    println!("(host flattening) shortens the host columns; PTP turns the remaining");
    println!("accesses into cache hits. The paper reports 4.4 → 2.8 accesses/walk");
    println!("for GF+HF and +14.0% IPC for GF+HF+PTP.");
}
