//! Physical-memory fragmentation and the graceful fallback (paper §3.2,
//! §6.2): what happens to a flattened page table when the kernel cannot
//! find free 2 MB blocks.
//!
//! ```sh
//! cargo run --release --example fragmentation_study
//! ```

use flatwalk::os::{AddressSpace, AddressSpaceSpec, BuddyAllocator, FragmentationScenario};
use flatwalk::pt::Layout;
use flatwalk::types::rng::SplitMix64;

fn build(buddy: &mut BuddyAllocator, label: &str) {
    let spec = AddressSpaceSpec::new(Layout::flat_l4l3_l2l1(), 256 << 20)
        .with_scenario(FragmentationScenario::HALF);
    let space = AddressSpace::build(spec, buddy).expect("build");
    let c = space.census();
    println!("--- {label} ---");
    println!(
        "  table nodes: {} flat (2 MB) + {} conventional (4 KB), {} fell back",
        c.flat2_nodes, c.conventional_nodes, c.fallback_nodes
    );
    println!(
        "  data pages:  {} x 2 MB, {} x 4 KB ({} huge-page requests fell back to 4 KB)",
        space.build_stats().huge_data_pages,
        space.build_stats().small_data_pages,
        space.build_stats().huge_data_fallbacks,
    );
    println!("  table size:  {} KB\n", c.table_bytes() >> 10);
}

fn main() {
    println!("Building a 256 MB address space with a flattened (L4+L3, L2+L1)");
    println!("page table and 50% large data pages, twice:\n");

    // 1. Pristine physical memory: everything gets its 2 MB blocks.
    let mut fresh = BuddyAllocator::new(0, 1 << 30);
    build(&mut fresh, "fresh memory");

    // 2. Fragmented memory: scattered single-page allocations destroy
    //    2 MB contiguity; the kernel falls back per node and per data
    //    page, and the table still works.
    let mut fragged = BuddyAllocator::new(0, 1 << 30);
    let mut rng = SplitMix64::new(2024);
    let held = fragged.fragment(&mut rng, 0.04);
    println!(
        "(fragmented memory: holding {} scattered 4 KB pages — no free 2 MB block survives)\n",
        held.len()
    );
    build(&mut fragged, "fragmented memory");

    println!("This is the paper's key practicality argument: schemes that *require*");
    println!("large contiguous allocations (ECH, ASAP's flat arrays) break here;");
    println!("flattening degrades per-node to the conventional layout instead.");
}
