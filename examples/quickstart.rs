//! Quickstart: simulate one benchmark under the paper's four main
//! configurations and print what changed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flatwalk::sim::{NativeSimulation, SimOptions, TranslationConfig};
use flatwalk::workloads::WorkloadSpec;

fn main() {
    // A GUPS-like random-update workload, scaled to 512 MB so the
    // example finishes in seconds (the benchmark suite defaults to the
    // paper's 8 GB).
    let spec = WorkloadSpec::gups().scaled_mib(512);

    let mut opts = SimOptions::server();
    opts.warmup_ops = 100_000;
    opts.measure_ops = 300_000;
    opts.phys_mem_bytes = 2 << 30;

    println!(
        "workload: {} ({} MiB footprint)\n",
        spec.name,
        spec.footprint >> 20
    );
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>9}",
        "config", "acc/walk", "walk-lat", "ipc", "speedup"
    );

    let mut base_ipc = 0.0;
    for config in [
        TranslationConfig::baseline(),
        TranslationConfig::flattened(),
        TranslationConfig::prioritized(),
        TranslationConfig::flattened_prioritized(),
    ] {
        let report = NativeSimulation::build(spec.clone(), config, &opts).run();
        if report.config == "Base" {
            base_ipc = report.ipc();
        }
        println!(
            "{:<10} {:>9.2} {:>10.1} {:>10.4} {:>+8.1}%",
            report.config,
            report.walk.accesses_per_walk(),
            report.walk.latency_per_walk(),
            report.ipc(),
            (report.ipc() / base_ipc - 1.0) * 100.0,
        );
    }

    println!();
    println!("FPT flattens the page table: every walk becomes a single access.");
    println!("PTP keeps page-table lines in the L2/LLC: that access becomes a hit.");
}
